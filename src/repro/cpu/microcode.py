"""MSROM microcode routines for the user-interrupt paths (§3.3, §3.5).

Three routines matter to the paper's timing story:

- ``senduipi`` (sender): look up the UITT entry, post the vector into the
  destination UPID's PIR, set ON, read NDST/NV, and write the ICR — 57
  micro-ops, dominated by serializing MSR writes (§3.5: 383 cycles total,
  279 of them stall).
- *notification processing* (receiver): read the current thread's UPID,
  latch the posted vector into UIRR, clear the ON bit.  The UPID read is the
  memory-gap cost tracked interrupts cannot avoid for IPIs (231 vs. 105
  cycles, §4.2).
- *interrupt delivery* (receiver): push SP/PC/vector onto the user stack,
  clear UIF, update UIRR, and transfer to the registered handler — the
  105-cycle path that KB-timer and forwarded-device interrupts enter
  directly (§4.3, §4.5).

Micro-ops carry a ``semantic`` tag; the core applies the architectural side
effect (APIC ICR write, UPID bit updates, UIF changes) when the micro-op
*commits*, so wrong-path microcode has no effect.  Memory-op addresses that
come from architectural state (UPID, UITT) are resolved by the core at
execute time via the semantic tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.cpu.config import TimingParams
from repro.cpu.isa import Op, RegNames


@dataclass(frozen=True, slots=True)
class MicroOp:
    """One MSROM micro-op.

    ``op`` selects the execution resource/latency class; ``semantic`` names
    the architectural effect.  ``chain`` makes the micro-op depend on the
    previous micro-op of the routine (modelling the sequential portions of
    microcode); un-chained micro-ops only have register dependences.
    """

    op: Op
    semantic: str = ""
    dest: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    imm: int = 0
    extra_latency: int = 0
    chain: bool = False
    #: Derived source-register tuple, computed once at construction so the
    #: dispatch hot path instantiates the template by copy.
    src_regs: Tuple[int, ...] = field(default=(), init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "src_regs", tuple(r for r in (self.src1, self.src2) if r is not None)
        )


# Semantic tags (shared with the core's commit logic)
SEM_UITT_LOAD = "uitt_load"
SEM_UPID_SET_PIR = "upid_set_pir"
SEM_UPID_READ_NDST = "upid_read_ndst"
SEM_ICR_WRITE = "icr_write"
SEM_NOTIF_READ_PIR = "notif_read_pir"
SEM_NOTIF_LATCH_UIRR = "notif_latch_uirr"
SEM_NOTIF_CLEAR_ON = "notif_clear_on"
SEM_DEL_PUSH_SP = "del_push_sp"
SEM_DEL_PUSH_PC = "del_push_pc"
SEM_DEL_PUSH_VEC = "del_push_vec"
SEM_DEL_ADJUST_SP = "del_adjust_sp"
SEM_DEL_CLEAR_UIF = "del_clear_uif"
SEM_DEL_UPDATE_UIRR = "del_update_uirr"

#: Semantics whose memory address is supplied by architectural state rather
#: than computed from registers.
ARCH_ADDR_SEMANTICS = frozenset(
    {SEM_UITT_LOAD, SEM_UPID_SET_PIR, SEM_UPID_READ_NDST, SEM_NOTIF_READ_PIR, SEM_NOTIF_CLEAR_ON}
)


def senduipi_routine(timing: TimingParams, uitt_index: int) -> List[MicroOp]:
    """The 57-micro-op senduipi expansion (§3.5).

    The routine's visible effects: PIR/ON update in the destination UPID
    (so the receiver's notification processing finds the vector) and the ICR
    write (which makes the local APIC send the IPI).  The serializing MSR
    writes carry the measured 279 stall cycles between them.
    """
    uops: List[MicroOp] = []
    # Entry: permission/UIF checks and UITT index validation.
    uops.append(
        MicroOp(Op.ADD, semantic="senduipi_entry", extra_latency=timing.msrom_entry_latency)
    )
    uops.append(MicroOp(Op.LOAD, semantic=SEM_UITT_LOAD, imm=uitt_index, chain=True))
    # Read-modify-write of the destination UPID: set PIR bit and ON bit.
    uops.append(MicroOp(Op.STORE, semantic=SEM_UPID_SET_PIR, imm=uitt_index, chain=True))
    # Read the routing fields (NDST/NV) for the IPI.
    uops.append(MicroOp(Op.LOAD, semantic=SEM_UPID_READ_NDST, imm=uitt_index, chain=True))
    # Serializing MSR work brackets the ICR write: the IPI launches partway
    # through the routine (Figure 2: the receiver is interrupted at ~380
    # while senduipi itself retires at ~383).
    uops.append(
        MicroOp(
            Op.MSR_WRITE,
            semantic="senduipi_msr_setup",
            extra_latency=timing.senduipi_pre_icr_stall,
            chain=True,
        )
    )
    uops.append(
        MicroOp(
            Op.MSR_WRITE,
            semantic=SEM_ICR_WRITE,
            imm=uitt_index,
            extra_latency=timing.senduipi_icr_stall,
            chain=True,
        )
    )
    uops.append(
        MicroOp(
            Op.MSR_WRITE,
            semantic="senduipi_msr_teardown",
            extra_latency=timing.senduipi_post_icr_stall,
            chain=True,
        )
    )
    # Bookkeeping micro-ops bringing the routine to the measured 57.
    while len(uops) < timing.senduipi_uop_count:
        uops.append(MicroOp(Op.ADD, semantic="senduipi_fill"))
    return uops


def notification_routine(timing: TimingParams) -> List[MicroOp]:
    """Notification processing (§3.3 step 4).

    Reads the current thread's UPID (a remote-dirty line when a sender just
    posted to it — the dominant cost), latches PIR into UIRR, clears ON.
    """
    return [
        MicroOp(Op.ADD, semantic="notif_entry", extra_latency=timing.msrom_entry_latency),
        MicroOp(Op.LOAD, semantic=SEM_NOTIF_READ_PIR, chain=True),
        # The ON-bit update is the first externally observable notification
        # event (§3.5's measurement anchor); the UIRR latch follows it.
        MicroOp(Op.STORE, semantic=SEM_NOTIF_CLEAR_ON, chain=True),
        MicroOp(Op.MSR_WRITE, semantic=SEM_NOTIF_LATCH_UIRR, extra_latency=timing.notif_latch_stall, chain=True),
        MicroOp(Op.ADD, semantic="notif_fill", chain=True),
    ]


def delivery_routine(timing: TimingParams) -> List[MicroOp]:
    """User interrupt delivery (§3.3 step 5) — the 105-cycle path.

    Pushes SP, PC, and the vector onto the user stack (the SP read is what
    the §6.1 worst case chains on), clears UIF, updates UIRR, and hands off
    to the registered handler.  The front-end continues fetching at the
    handler entry immediately after these micro-ops.
    """
    sp = RegNames.SP
    return [
        MicroOp(Op.ADD, semantic="del_entry", extra_latency=timing.msrom_entry_latency),
        # Pushes: addresses computed from the architectural SP register.
        MicroOp(Op.STORE, semantic=SEM_DEL_PUSH_SP, src1=sp, imm=-8),
        MicroOp(Op.STORE, semantic=SEM_DEL_PUSH_PC, src1=sp, imm=-16),
        MicroOp(Op.STORE, semantic=SEM_DEL_PUSH_VEC, src1=sp, imm=-24),
        MicroOp(Op.SUB, semantic=SEM_DEL_ADJUST_SP, dest=sp, src1=sp, imm=24),
        MicroOp(Op.MSR_WRITE, semantic=SEM_DEL_CLEAR_UIF, extra_latency=timing.uif_write_stall, chain=True),
        MicroOp(Op.MSR_WRITE, semantic=SEM_DEL_UPDATE_UIRR, extra_latency=timing.uirr_write_stall, chain=True),
        MicroOp(Op.ADD, semantic="del_fill", chain=True),
    ]


def receive_routine(timing: TimingParams, needs_notification: bool) -> List[MicroOp]:
    """The full receiver-side micro-op stream for one interrupt.

    IPIs (UIPI) need notification processing (UPID access) before delivery;
    KB-timer and forwarded-device interrupts skip straight to delivery
    (§4.3/§4.5) — "the microcode for interrupt delivery can start at step 5".
    """
    uops: List[MicroOp] = []
    if needs_notification:
        uops.extend(notification_routine(timing))
    uops.extend(delivery_routine(timing))
    return uops


# ---------------------------------------------------------------------------
# Interned routine templates (decode memoization)
# ---------------------------------------------------------------------------
#
# The routines above rebuild their micro-op lists on every expansion — once
# per ``senduipi`` fetch and once per interrupt injection.  MicroOps are
# frozen and the front-end only reads them (queues are rebound, never mutated
# in place), so identical routines can be interned and shared: the cached
# variants return the *same* immutable tuple for the same (timing, args).
# ``TimingParams`` is a frozen dataclass, hence hashable.


@lru_cache(maxsize=None)
def senduipi_routine_cached(timing: TimingParams, uitt_index: int) -> Tuple[MicroOp, ...]:
    """Interned :func:`senduipi_routine`; callers must not mutate the result."""
    return tuple(senduipi_routine(timing, uitt_index))


@lru_cache(maxsize=None)
def receive_routine_cached(timing: TimingParams, needs_notification: bool) -> Tuple[MicroOp, ...]:
    """Interned :func:`receive_routine`; callers must not mutate the result."""
    return tuple(receive_routine(timing, needs_notification))
