"""Branch prediction: gshare direction predictor, BTB, and a return stack.

Prediction quality matters to the experiments in two ways: polling-based
notification eats a mispredict when the flag finally flips (§4.2), and
tracked interrupts must survive misspeculation recovery (§4.2's state
machine), which only gets exercised if branches actually mispredict.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cpu.isa import Instruction, Op


class GsharePredictor:
    """Global-history XOR-indexed table of 2-bit saturating counters."""

    def __init__(self, table_bits: int = 12, history_bits: int = 12) -> None:
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._table: List[int] = [2] * (1 << table_bits)  # weakly taken
        self._history = 0
        self._history_mask = (1 << history_bits) - 1
        self._index_mask = (1 << table_bits) - 1

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._index_mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def record_speculative(self, taken: bool) -> int:
        """Shift the predicted outcome into history; return prior history for recovery."""
        prior = self._history
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        return prior

    def restore_history(self, history: int) -> None:
        self._history = history

    def update(self, pc: int, history_at_predict: int, taken: bool) -> None:
        """Train the counter indexed with the history in effect at prediction."""
        saved = self._history
        self._history = history_at_predict
        index = self._index(pc)
        self._history = saved
        counter = self._table[index]
        if taken and counter < 3:
            self._table[index] = counter + 1
        elif not taken and counter > 0:
            self._table[index] = counter - 1


class BranchTargetBuffer:
    """Direct-mapped PC -> target cache for taken branches."""

    def __init__(self, entries: int = 1024) -> None:
        self._entries = entries
        self._tags: List[Optional[int]] = [None] * entries
        self._targets: List[int] = [0] * entries

    def lookup(self, pc: int) -> Optional[int]:
        index = pc % self._entries
        if self._tags[index] == pc:
            return self._targets[index]
        return None

    def update(self, pc: int, target: int) -> None:
        index = pc % self._entries
        self._tags[index] = pc
        self._targets[index] = target


class ReturnAddressStack:
    """A small RAS for CALL/RET pairs."""

    def __init__(self, depth: int = 16) -> None:
        self._depth = depth
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self._depth:
            self._stack.pop(0)
        self._stack.append(return_pc)

    def pop(self) -> Optional[int]:
        return self._stack.pop() if self._stack else None

    def snapshot(self) -> List[int]:
        return list(self._stack)

    def restore(self, snapshot: List[int]) -> None:
        self._stack = list(snapshot)


class BranchPredictor:
    """The front-end's combined predictor.

    ``predict(pc, instruction)`` returns ``(taken, target, history_token)``;
    ``history_token`` must be passed back to :meth:`resolve` so training and
    history recovery use the state in effect at prediction time.
    """

    def __init__(self, table_bits: int = 12, btb_entries: int = 1024) -> None:
        self.gshare = GsharePredictor(table_bits=table_bits)
        self.btb = BranchTargetBuffer(entries=btb_entries)
        self.ras = ReturnAddressStack()
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, pc: int, instruction: Instruction) -> Tuple[bool, Optional[int], int]:
        self.predictions += 1
        op = instruction.op
        if op in (Op.JMP, Op.CALL):
            # Direct unconditional: target known at decode.
            target = instruction.target if isinstance(instruction.target, int) else None
            if op is Op.CALL:
                self.ras.push(pc + 1)
            history = self.gshare.record_speculative(True)
            return True, target, history
        if op is Op.RET:
            target = self.ras.pop()
            history = self.gshare.record_speculative(True)
            return True, target, history
        # Conditional branch.
        taken = self.gshare.predict(pc)
        target: Optional[int] = None
        if taken:
            target = self.btb.lookup(pc)
            if target is None and isinstance(instruction.target, int):
                # Direct conditional branches carry their target in the
                # encoding; the BTB only matters for the first-sight case,
                # which we approximate as available at decode.
                target = instruction.target
        history = self.gshare.record_speculative(taken)
        return taken, target, history

    def resolve(
        self,
        pc: int,
        instruction: Instruction,
        history_token: int,
        actual_taken: bool,
        actual_target: int,
        predicted_taken: bool,
        predicted_target: Optional[int],
    ) -> bool:
        """Train on the outcome; return True if this was a misprediction."""
        if instruction.is_cond_branch:
            self.gshare.update(pc, history_token, actual_taken)
        if actual_taken:
            self.btb.update(pc, actual_target)
        mispredicted = actual_taken != predicted_taken or (
            actual_taken and predicted_target != actual_target
        )
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0
