"""Cycle tier: an out-of-order x86-like core model (the gem5 substitute).

This package models the microarchitecture the paper's §3-§4 results live in:
a fetch/decode/rename/issue/execute/commit pipeline with a ROB, issue queue,
load/store queues, branch prediction, a cache hierarchy, and an MSROM from
which interrupt microcode is injected.  The three interrupt-delivery
strategies the paper compares — *flush* (Sapphire Rapids / UIPI), *drain*
(gem5's legacy model), and *tracking* (the xUI contribution) — are
implemented in :mod:`repro.cpu.delivery`.
"""

from repro.cpu.isa import Op, Instruction, RegNames
from repro.cpu.program import Program, ProgramBuilder
from repro.cpu.config import CoreParams, TimingParams
from repro.cpu.core import Core
from repro.cpu.multicore import MultiCoreSystem
from repro.cpu.delivery import (
    DeliveryStrategy,
    FlushStrategy,
    DrainStrategy,
    TrackedStrategy,
)

__all__ = [
    "Op",
    "Instruction",
    "RegNames",
    "Program",
    "ProgramBuilder",
    "CoreParams",
    "TimingParams",
    "Core",
    "MultiCoreSystem",
    "DeliveryStrategy",
    "FlushStrategy",
    "DrainStrategy",
    "TrackedStrategy",
]
