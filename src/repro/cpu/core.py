"""The out-of-order core: fetch, rename, issue, execute, commit — per cycle.

One :meth:`Core.step` call advances the core by one cycle, in back-to-front
stage order (commit, completions, issue, fetch) so each stage works on the
previous cycle's state.  Interrupt-delivery behaviour is delegated to a
:class:`repro.cpu.delivery.DeliveryStrategy`, which is where flush / drain /
tracking differ.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.common.counters import GLOBAL_COUNTERS, fast_engine_enabled
from repro.common.errors import ConfigError, ProtocolError, SimulationError
from repro.cpu.backend import (
    ST_DONE,
    ST_EXECUTING,
    ST_READY,
    ST_WAITING,
    FunctionalUnits,
    LoadStoreQueues,
    UOp,
    squash_penalty_cycles,
)
from repro.cpu.branch import BranchPredictor
from repro.cpu.cache import InstructionCache, MemoryHierarchy, SharedMemory
from repro.cpu.config import SystemConfig
from repro.cpu.isa import NUM_REGS, Instruction, Op, RegNames
from repro.cpu import microcode as mc
from repro.cpu.microcode import MicroOp
from repro.cpu.program import Program, instruction_address
from repro.cpu.uintr_state import KBTimerState, UserInterruptFile
from repro.cpu.uopcache import UopCache
from repro.sim.trace import TraceRecorder
from repro.uintr.apic import InterruptKind, LocalApic, PendingInterrupt
from repro.uintr.upid import UPID

MASK64 = (1 << 64) - 1
#: Pseudo-register key for microcode chain dependences.
CHAIN_KEY = -1
#: Store-to-load forwarding latency.
FORWARD_LATENCY = 5
#: "No activity in sight" sentinel for :meth:`Core.next_activity_cycle`.
FAR_FUTURE = 1 << 62
#: Cap on the adaptive horizon-scan backoff: after a long busy streak the
#: fast engine re-checks for skip opportunities at most once per CAP stepped
#: cycles.  The backoff ramps at a quarter of the streak so workloads with
#: short, frequent stalls (streaming copies) still detect quiescence within
#: a couple of cycles, while truly dense code (spin loops, tight ALU chains)
#: amortizes the scan 1:CAP.  Bounds both the wasted scans on dense code and
#: the quiescence-detection delay on stall-heavy code.
NA_BACKOFF_CAP = 16


@dataclass
class CoreStats:
    """Counters the experiments read out."""

    cycles: int = 0
    committed_instructions: int = 0
    committed_uops: int = 0
    committed_handler_instructions: int = 0
    squashed_uops: int = 0
    fetched_uops: int = 0
    interrupts_delivered: int = 0
    interrupt_flushes: int = 0
    branch_squashes: int = 0
    memory_order_squashes: int = 0
    serialize_stall_cycles: int = 0

    def snapshot(self) -> "CoreStats":
        return CoreStats(**self.__dict__)


class Core:
    """One out-of-order core executing a :class:`Program`."""

    # Slotted (PRO103): a core is the densest object in the cycle tier, and
    # slots also turn accidental attribute scribbles (a fault injector or
    # test typo) into an immediate AttributeError instead of silent state
    # the engines could diverge on.
    __slots__ = (
        "core_id",
        "program",
        "config",
        "params",
        "timing",
        "shared",
        "apic",
        "strategy",
        "send_ipi",
        "trace",
        "hierarchy",
        "icache",
        "uop_cache",
        "predictor",
        "fus",
        "lsq",
        "uintr",
        "uitt",
        "apic_timer",
        "stats",
        "arch_regs",
        "cycle",
        "halted",
        "engine_cycles_skipped",
        "_next_activity",
        "_idle_anchor",
        "_na_streak",
        "_na_backoff",
        "_prog_len",
        "rob",
        "reg_producer",
        "ready_heap",
        "exec_heap",
        "iq_count",
        "_seq",
        "_serialize_until",
        "fetch_pc",
        "fetch_stall_until",
        "wait_reason",
        "inject_queue",
        "inject_pos",
        "macro_queue",
        "macro_pos",
        "macro_pc",
        "interrupt_path",
        "_last_chain_uop",
        "_current_fetch_line",
        "delivery_state",
        "current_interrupt",
        "last_program_commit_cycle",
        "_notif_pir",
        "_trace_resume_pending",
        "_conservative_loads",
        "invariant_probe",
        "_macro",
        "_macro_rec",
    )

    def __init__(
        self,
        core_id: int,
        program: Program,
        config: SystemConfig,
        shared_memory: SharedMemory,
        apic: LocalApic,
        strategy: "DeliveryStrategy",
        send_ipi: Optional[Callable[[int, int], None]] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.core_id = core_id
        self.program = program
        self.config = config
        self.params = config.core
        self.timing = config.timing
        self.shared = shared_memory
        self.apic = apic
        self.strategy = strategy
        self.send_ipi = send_ipi or (lambda dest, vector: None)
        self.trace = trace or TraceRecorder(enabled=False)

        self.hierarchy = MemoryHierarchy(core_id, config.dcache, config.memory, shared_memory)
        self.icache = InstructionCache(config.icache, config.memory)
        self.uop_cache = UopCache()
        self.predictor = BranchPredictor()
        self.fus = FunctionalUnits(config.core)
        self.lsq = LoadStoreQueues(config.core)
        self.uintr = UserInterruptFile()
        self.uitt = None  # set by MultiCoreSystem.register_sender
        #: The conventional local APIC timer (the kernel's timer).  Exists
        #: so the Skyloft UINV-overload trick (§7) can be reproduced; xUI
        #: adds the separate KB timer precisely so this one stays with the
        #: kernel (§4.3).
        self.apic_timer = KBTimerState()
        self.stats = CoreStats()

        self.arch_regs: List[int] = [0] * NUM_REGS
        self.cycle = 0
        self.halted = False

        # Engine telemetry (NOT part of CoreStats: simulated results must be
        # byte-identical between the naive and cycle-skipping engines, so
        # skip accounting lives outside the model counters).
        self.engine_cycles_skipped = 0
        #: Cached next-activity horizon, maintained by MultiCoreSystem.run.
        self._next_activity = 0
        #: First cycle of the current idle stretch (-1 when active); idle
        #: accounting is deferred until the core next steps (lazy flush).
        self._idle_anchor = -1
        #: Adaptive horizon-scan backoff: consecutive "no skip possible"
        #: answers from :meth:`next_activity_cycle`, and how many stepped
        #: cycles to skip re-asking.  A busy pipeline (dense compute) would
        #: otherwise pay the horizon scan every cycle for nothing; stepping
        #: without asking is always safe, merely conservative.
        self._na_streak = 0
        self._na_backoff = 0
        self._prog_len = len(program)

        # Back-end state
        self.rob: Deque[UOp] = deque()
        self.reg_producer: Dict[int, UOp] = {}
        self.ready_heap: List[Tuple[int, int, UOp]] = []
        self.exec_heap: List[Tuple[int, int, UOp]] = []
        self.iq_count = 0
        self._seq = 0
        self._serialize_until = -1

        # Front-end state
        self.fetch_pc = program.entry_index
        self.fetch_stall_until = 0
        self.wait_reason: Optional[str] = None  # "uiret" | "halt" | "drain"
        # Queues hold interned routine templates (tuples shared across
        # expansions); they are rebound on reset, never mutated in place.
        self.inject_queue: Sequence[MicroOp] = ()
        self.inject_pos = 0
        self.macro_queue: Sequence[MicroOp] = ()
        self.macro_pos = 0
        self.macro_pc = -1
        self.interrupt_path = False
        self._last_chain_uop: Optional[UOp] = None
        self._current_fetch_line = -1

        # Interrupt delivery state (driven by the strategy)
        self.delivery_state: Optional[str] = None  # None | "inflight"
        self.current_interrupt: Optional[PendingInterrupt] = None
        self.last_program_commit_cycle = 0
        self._notif_pir = 0
        self._trace_resume_pending = False
        #: (pc, is_micro) of loads that have violated memory ordering:
        #: they wait for older store addresses on later executions.
        self._conservative_loads: set = set()
        #: Optional invariant hook (see ``repro.faults.invariants``): called
        #: as ``probe(event, core)`` after interrupt injection ("inject"),
        #: after a misspeculation squash ("squash"), after a full flush
        #: ("flush"), and at uiret commit ("uiret").  Probes must only read
        #: state — simulated results stay byte-identical with or without one.
        self.invariant_probe: Optional[Callable[[str, "Core"], None]] = None
        #: Macro-op trace tier (``repro.cpu.macroop``): the controller the
        #: multi-core fast path installs when ``REPRO_MACRO`` is on, and the
        #: active recording's memory-access log (a list, or None when not
        #: recording).  Both are engine plumbing — never simulated state.
        self._macro = None
        self._macro_rec: Optional[list] = None

        strategy.attach(self)

    # ------------------------------------------------------------------
    # Per-cycle step
    # ------------------------------------------------------------------

    def step(self, cycle: int) -> None:
        """Advance the core by one cycle (``cycle`` is the global clock)."""
        if self.halted:
            return
        self.cycle = cycle
        self.stats.cycles += 1
        # Timer checks fire only when a timer is armed, and strategies that
        # declare ``always_poll = False`` are polled only while an interrupt
        # is pending — both are pure no-ops otherwise.
        if self.uintr.kb_timer.armed or self.apic_timer.armed:
            self._check_kb_timer()
        strategy = self.strategy
        if strategy.always_poll or self.apic._pending:
            strategy.on_cycle()
        self._commit_stage()
        if self.halted:
            return
        self._complete_stage()
        self._issue_stage()
        self._fetch_stage()

    def run(self, max_cycles: int) -> int:
        """Single-core convenience loop (multi-core runs use MultiCoreSystem).

        With the fast engine enabled (default; ``REPRO_FAST=0`` opts out)
        the loop jumps the clock over provably quiescent stretches — see
        :meth:`next_activity_cycle`.  Results are byte-identical to the
        naive stepper; only wall-clock changes.
        """
        start = self.cycle
        end = start + max_cycles
        stepped = 0
        skipped = 0
        hits0 = self.uop_cache.hits
        misses0 = self.uop_cache.misses
        if fast_engine_enabled():
            cycle = start
            backoff = 0
            streak = self._na_streak
            while cycle < end:
                if self.halted:
                    break
                self.step(cycle)
                stepped += 1
                if self.halted:
                    break
                if backoff > 0:
                    # The pipeline has been busy every recent cycle; step on
                    # without re-scanning the horizon (always safe).
                    backoff -= 1
                    cycle += 1
                    continue
                nxt = self.next_activity_cycle()
                if nxt > cycle + 1:
                    streak = 0
                    if nxt >= end:
                        # Quiescent through the end of the window: the naive
                        # stepper would no-op cycles cycle+1 .. end-1.
                        quiet = end - 1 - cycle
                        if quiet > 0:
                            self.note_skipped(quiet)
                            skipped += quiet
                            self.cycle = end - 1
                        break
                    quiet = nxt - 1 - cycle
                    self.note_skipped(quiet)
                    skipped += quiet
                    cycle = nxt
                else:
                    if streak < 4 * NA_BACKOFF_CAP:
                        streak += 1
                    backoff = streak >> 2
                    cycle += 1
            self._na_streak = streak
        else:
            for cycle in range(start, end):
                if self.halted:
                    break
                self.step(cycle)
                stepped += 1
        g = GLOBAL_COUNTERS
        g.cycles_stepped += stepped
        g.cycles_skipped += skipped
        g.uop_cache_hits += self.uop_cache.hits - hits0
        g.uop_cache_misses += self.uop_cache.misses - misses0
        return self.cycle - start

    # ------------------------------------------------------------------
    # Cycle skipping (the fast engine)
    # ------------------------------------------------------------------

    def note_skipped(self, cycles: int) -> None:
        """Account ``cycles`` quiescent cycles without stepping them.

        A quiescent cycle in the naive stepper touches two counters —
        ``stats.cycles`` (every stepped cycle) and
        ``stats.serialize_stall_cycles`` (the issue stage increments it every
        cycle a serializing µop is in flight) — and, crucially, it also
        *re-defers* every due-but-blocked ready-heap entry to the next cycle
        (see ``_issue_stage``).  That time bump is not cosmetic: entries pop
        in ``(time, seq)`` order, so a blocked load left at a stale time
        would later pop *ahead* of a store that became ready mid-window,
        flipping speculative issue order and with it the memory-order squash
        pattern.  All callers share one convention — ``self.cycle`` is the
        last stepped cycle and the next step lands at
        ``self.cycle + cycles + 1`` — so the heap is normalized to exactly
        the state the naive stepper would arrive with.
        """
        self.stats.cycles += cycles
        self.engine_cycles_skipped += cycles
        if self._serialize_until >= 0:
            # Naive's issue stage early-outs while a serializing µop is in
            # flight: it counts the stall and pops nothing.
            self.stats.serialize_stall_cycles += cycles
            return
        ready_heap = self.ready_heap
        target = self.cycle + cycles + 1
        if not ready_heap or ready_heap[0][0] >= target:
            return
        # The skip was only taken because no due entry is issuable, so every
        # entry due inside the window is either stale (dropped at its first
        # due pop) or blocked (re-deferred each cycle, landing at ``target``).
        deferred: List[Tuple[int, int, UOp]] = []
        while ready_heap and ready_heap[0][0] < target:
            _, seq, uop = heapq.heappop(ready_heap)
            if uop.squashed or uop.state != ST_READY:
                continue
            deferred.append((target, seq, uop))
        for item in deferred:
            heapq.heappush(ready_heap, item)

    def next_activity_cycle(self) -> int:
        """The earliest future cycle at which stepping this core could change
        any state — i.e. cycles strictly between :attr:`cycle` + 1 and the
        returned value are provably no-ops and may be skipped.

        Activity sources, mirroring the stage conditions in :meth:`step`:

        - commit: the ROB head is already done (retires next cycle);
        - completion: the ``exec_heap`` head's completion time (memory
          responses surface here too — the hierarchy is synchronous, so a
          miss's latency is fixed at issue);
        - issue: the ``ready_heap`` head's ready time (ignored while a
          serializing µop stalls issue; its completion re-enables issue and
          is covered by the exec head);
        - fetch: the fetch stage could dispatch (not waiting on
          uiret/halt/drain, PC in range or microcode queued, back-end room)
          at ``max(cycle+1, fetch_stall_until)``;
        - timers: an armed KB/APIC timer's next deadline;
        - delivery: a pending deliverable interrupt, or whatever the
          strategy reports via ``DeliveryStrategy.next_activity_cycle``
          (the base class conservatively disables skipping for strategies
          that have not opted in).
        """
        cycle = self.cycle
        horizon = cycle + 1
        rob = self.rob
        if rob and rob[0].state == ST_DONE:
            return horizon
        nxt = FAR_FUTURE
        exec_heap = self.exec_heap
        if exec_heap:
            t = exec_heap[0][0]
            if t <= horizon:
                return horizon
            if t < nxt:
                nxt = t
        if self._serialize_until < 0:
            ready_heap = self.ready_heap
            if ready_heap:
                t = ready_heap[0][0]
                if t <= horizon:
                    # The head is due, but issue may still be unable to act on
                    # it: stale entries (squashed / already issued) are merely
                    # dropped, and blocked entries (a serializing µop waiting
                    # for the ROB head, a conservative load waiting on older
                    # store addresses) are re-deferred every cycle.  Both are
                    # woken only by commit/completion progress, which the ROB
                    # and exec-heap clauses above already cover — so scan past
                    # them, mirroring ``_issue_stage``'s own filters, and force
                    # a step only if a genuinely issuable µop is due.
                    rob_head = rob[0] if rob else None
                    for rt, _, ruop in ready_heap:
                        if rt > horizon:
                            if rt < nxt:
                                nxt = rt
                            continue
                        if ruop.squashed or ruop.state != ST_READY:
                            continue  # stale: dropped whenever popped
                        if ruop.is_serializing and ruop is not rob_head:
                            continue  # deferred until it reaches the ROB head
                        if (
                            ruop.op is Op.LOAD
                            and (ruop.pc, ruop.is_micro) in self._conservative_loads
                            and self.lsq.has_unresolved_older_store(ruop)
                        ):
                            continue  # deferred until older stores resolve
                        return horizon
                elif t < nxt:
                    nxt = t
        if (
            self.wait_reason is None
            and (
                self.inject_pos < len(self.inject_queue)
                or self.macro_pos < len(self.macro_queue)
                or 0 <= self.fetch_pc < self._prog_len
            )
            and self._backend_has_room()
        ):
            t = self.fetch_stall_until
            if t <= horizon:
                return horizon
            if t < nxt:
                nxt = t
        t = self.uintr.kb_timer.next_fire_cycle()
        if t is not None:
            if t <= horizon:
                return horizon
            if t < nxt:
                nxt = t
        t = self.apic_timer.next_fire_cycle()
        if t is not None:
            if t <= horizon:
                return horizon
            if t < nxt:
                nxt = t
        # Interrupt delivery can act on any cycle while something is pending
        # and deliverable; be conservative and step through those windows.
        if self.apic.has_pending() and self.uintr.uif and self.delivery_state is None:
            return horizon
        t = self.strategy.next_activity_cycle()
        if t is not None and t < nxt:
            nxt = t
        return nxt if nxt > horizon else horizon

    # ------------------------------------------------------------------
    # KB timer (§4.3)
    # ------------------------------------------------------------------

    def _check_kb_timer(self) -> None:
        timer = self.uintr.kb_timer
        if timer.check_fire(self.cycle):
            self.apic.raise_timer(timer.vector, self.cycle)
            self.trace.record(self.cycle, "kb_timer_fire", core=self.core_id)
            if _obs.enabled:
                _obs.TRACER.instant(
                    self.cycle, "timer.kb_fire", f"timer{self.core_id}",
                    _obs.CAT_TIMER, vector=timer.vector,
                )
        # The conventional local APIC timer delivers through the APIC's
        # normal vector classification: a kernel interrupt — unless UINV has
        # been overloaded onto its vector (the Skyloft trick, §7).
        if self.apic_timer.check_fire(self.cycle):
            self.apic.accept(self.apic_timer.vector, self.cycle, kind=None)
            self.trace.record(self.cycle, "apic_timer_fire", core=self.core_id)
            if _obs.enabled:
                _obs.TRACER.instant(
                    self.cycle, "timer.apic_fire", f"timer{self.core_id}",
                    _obs.CAT_TIMER, vector=self.apic_timer.vector,
                )

    # ------------------------------------------------------------------
    # Commit stage
    # ------------------------------------------------------------------

    def _commit_stage(self) -> None:
        budget = self.params.retire_width
        rob = self.rob
        while budget > 0 and rob:
            head = rob[0]
            if head.state != ST_DONE:
                break
            rob.popleft()
            budget -= 1
            self._commit_uop(head)
            if self.halted:
                return

    def _commit_uop(self, uop: UOp) -> None:
        self.stats.committed_uops += 1
        op = uop.op
        if op in (Op.LOAD, Op.STORE):
            self.lsq.remove(uop)
        # Architectural register update.
        if uop.dest is not None:
            self.arch_regs[uop.dest] = uop.result & MASK64
            if self.reg_producer.get(uop.dest) is uop:
                del self.reg_producer[uop.dest]
        # Memory write.
        if op is Op.STORE and uop.addr is not None and not uop.semantic:
            self.shared.write(uop.addr, uop.store_value & MASK64, core_id=self.core_id)
        # Microcode / special semantics.
        if uop.semantic:
            self._apply_semantic(uop)
        if op is Op.CLUI:
            self.uintr.uif = False
        elif op is Op.STUI:
            self.uintr.uif = True
        elif op is Op.SETTIMER:
            self._apply_set_timer(uop)
        elif op is Op.CLRTIMER:
            self.uintr.kb_timer.disarm()
        elif op is Op.UIRET:
            self._commit_uiret(uop)
        elif op is Op.HALT:
            self.halted = True
        # Instruction accounting.
        if uop.macro_last and not uop.is_micro:
            if uop.from_interrupt:
                self.stats.committed_handler_instructions += 1
            else:
                self.stats.committed_instructions += 1
                self.last_program_commit_cycle = self.cycle
        # Macro-op trace tier: feed the recorder while scanning, else count
        # committed taken backward branches toward the hotness threshold.
        mac = self._macro
        if mac is not None:
            if mac._scanning:
                mac._commits.append(uop)
            elif (
                uop.is_cond_branch
                and uop.actual_taken
                and not uop.is_micro
                and not uop.from_interrupt
                and uop.target is not None
                and uop.target < uop.pc
            ):
                mac.note_backedge(uop.pc)
        self.strategy.on_commit(uop)

    def _apply_set_timer(self, uop: UOp) -> None:
        cycles_value = uop.source_value(uop.src_regs[0], self.arch_regs)
        mode_value = uop.source_value(uop.src_regs[1], self.arch_regs)
        if mode_value:
            self.uintr.kb_timer.arm_periodic(cycles_value, now=self.cycle)
        else:
            self.uintr.kb_timer.arm_oneshot(cycles_value)

    def _commit_uiret(self, uop: UOp) -> None:
        if self.invariant_probe is not None:
            self.invariant_probe("uiret", self)
        self.uintr.uif = True
        self.uintr.in_handler = False
        self.delivery_state = None
        self.current_interrupt = None
        self.stats.interrupts_delivered += 1
        self.trace.record(self.cycle, "uiret_commit", core=self.core_id)

    # -- microcode commit semantics ------------------------------------

    def _apply_semantic(self, uop: UOp) -> None:
        semantic = uop.semantic
        if semantic == mc.SEM_UPID_SET_PIR:
            entry_upid, entry_vector = self._uitt_entry(uop.uitt_index)
            upid = UPID(self.shared, entry_upid)
            upid.post_vector(entry_vector, core_id=self.core_id)
            self.trace.record(self.cycle, "upid_posted", core=self.core_id, vector=entry_vector)
        elif semantic == mc.SEM_ICR_WRITE:
            entry_upid, _ = self._uitt_entry(uop.uitt_index)
            upid = UPID(self.shared, entry_upid)
            if not upid.suppressed:
                self.trace.record(self.cycle, "icr_write", core=self.core_id)
                self.send_ipi(upid.notification_destination, upid.notification_vector)
        elif semantic == mc.SEM_NOTIF_LATCH_UIRR:
            self.uintr.latch_uirr(self._notif_pir)
            self._notif_pir = 0
        elif semantic == mc.SEM_NOTIF_CLEAR_ON:
            if self.uintr.upid_addr is not None:
                upid = UPID(self.shared, self.uintr.upid_addr)
                self._notif_pir = upid.take_pir(core_id=self.core_id)
                upid.set_outstanding(False, core_id=self.core_id)
            self.trace.record(self.cycle, "notif_clear_on", core=self.core_id)
        elif semantic == mc.SEM_DEL_PUSH_SP and uop.addr is not None:
            self.shared.write(uop.addr, uop.store_value & MASK64, core_id=self.core_id)
        elif semantic == mc.SEM_DEL_PUSH_PC and uop.addr is not None:
            value = self.uintr.ui_return_pc if self.uintr.ui_return_pc is not None else 0
            self.shared.write(uop.addr, value, core_id=self.core_id)
        elif semantic == mc.SEM_DEL_PUSH_VEC and uop.addr is not None:
            vector = self.current_interrupt.vector if self.current_interrupt else 0
            self.shared.write(uop.addr, vector, core_id=self.core_id)
        elif semantic == mc.SEM_DEL_CLEAR_UIF:
            self.uintr.uif = False
            self.uintr.in_handler = True
            self.trace.record(self.cycle, "uif_clear", core=self.core_id)
        elif semantic == mc.SEM_DEL_UPDATE_UIRR:
            self.uintr.take_uirr_vector()
            self.trace.record(self.cycle, "delivery_done", core=self.core_id)
            if _obs.enabled and self.current_interrupt is not None:
                # One span per delivery: APIC arrival through delivery-done.
                pending = self.current_interrupt
                _obs.TRACER.complete(
                    pending.arrival_time,
                    self.cycle - pending.arrival_time,
                    "uintr.delivery",
                    f"core{self.core_id}",
                    _obs.CAT_DELIVERY,
                    vector=pending.vector,
                    kind=pending.kind.value,
                )

    def _uitt_entry(self, index: int) -> Tuple[int, int]:
        if self.uintr.uitt_base is None:
            raise ProtocolError("senduipi without a registered UITT")
        addr = self.uintr.uitt_base + 16 * index
        return self.shared.read(addr), self.shared.read(addr + 8)

    # ------------------------------------------------------------------
    # Completion stage
    # ------------------------------------------------------------------

    def _complete_stage(self) -> None:
        exec_heap = self.exec_heap
        cycle = self.cycle
        heappop = heapq.heappop
        while exec_heap and exec_heap[0][0] <= cycle:
            _, _, uop = heappop(exec_heap)
            if uop.squashed:
                continue
            uop.state = ST_DONE
            if uop.is_serializing:
                self._serialize_until = -1
            for dependent in uop.dependents:
                if dependent.squashed or dependent.state != ST_WAITING:
                    continue
                dependent.wait_count -= 1
                if dependent.wait_count == 0:
                    self._mark_ready(dependent, max(cycle, dependent.frontend_ready))
            if uop.is_branch:
                self._resolve_branch(uop)
            elif uop.op is Op.UIRET:
                self._uiret_redirect(uop)

    def _mark_ready(self, uop: UOp, at_cycle: int) -> None:
        uop.state = ST_READY
        heapq.heappush(self.ready_heap, (at_cycle, uop.seq, uop))

    # -- branch resolution ----------------------------------------------

    def _resolve_branch(self, uop: UOp) -> None:
        actual_taken = uop.actual_taken
        actual_target = uop.actual_target if uop.actual_target is not None else uop.pc + 1
        mispredicted = self.predictor.resolve(
            uop.pc,
            uop.instr if uop.instr is not None else Instruction(uop.op),
            uop.history_token,
            actual_taken,
            actual_target,
            uop.pred_taken,
            uop.pred_target,
        )
        if not mispredicted:
            return
        self.stats.branch_squashes += 1
        # Recover predictor history to the state at this branch, then shift
        # the actual outcome in.
        self.predictor.gshare.restore_history(uop.history_token)
        self.predictor.gshare.record_speculative(actual_taken)
        if uop.ras_snapshot is not None:
            self.predictor.ras.restore(uop.ras_snapshot)
            if uop.op is Op.CALL:
                self.predictor.ras.push(uop.pc + 1)
        new_pc = actual_target if actual_taken else uop.pc + 1
        self._squash_younger_than(uop, new_pc)

    def _uiret_redirect(self, uop: UOp) -> None:
        if self.uintr.ui_return_pc is None:
            raise ProtocolError("uiret executed with no saved return state")
        self.fetch_pc = self.uintr.ui_return_pc
        self.wait_reason = None
        self.interrupt_path = False
        self._current_fetch_line = -1
        self._trace_resume_pending = self.trace.enabled
        self.trace.record(self.cycle, "uiret_exec", core=self.core_id)

    # -- squash ----------------------------------------------------------

    def _squash_younger_than(self, trigger: UOp, new_fetch_pc: int) -> None:
        """Squash every µop younger than ``trigger`` and redirect fetch."""
        self._squash_after_seq(trigger.seq, new_fetch_pc, trigger.from_interrupt)

    def _squash_after_seq(
        self, keep_upto_seq: int, new_fetch_pc: int, trigger_from_interrupt: bool
    ) -> None:
        seq = keep_upto_seq
        survivors: Deque[UOp] = deque()
        squashed = 0
        squashed_interrupt_path = False
        for uop in self.rob:
            if uop.seq <= seq:
                survivors.append(uop)
            else:
                uop.squashed = True
                if uop.from_interrupt:
                    squashed_interrupt_path = True
                if uop.state in (ST_WAITING, ST_READY):
                    self.iq_count -= 1
                if uop.is_serializing and uop.state == ST_EXECUTING:
                    self._serialize_until = -1
                squashed += 1
        self.rob = survivors
        self.stats.squashed_uops += squashed
        self.lsq.drop_squashed()
        self._rebuild_rename()
        # Un-fetched remainders of macros/injections are younger than the
        # squash point by construction; drop them.
        self.macro_queue = []
        self.macro_pos = 0
        self.macro_pc = -1
        if self.inject_pos < len(self.inject_queue):
            squashed_interrupt_path = True
        self.inject_queue = []
        self.inject_pos = 0
        self._last_chain_uop = None
        # A squash triggered from within the interrupt path (a handler
        # branch) stays on the interrupt path; a program-path squash
        # removes the whole injected stream.
        self.interrupt_path = trigger_from_interrupt
        self.wait_reason = None
        self.fetch_pc = new_fetch_pc
        self._current_fetch_line = -1
        penalty = squash_penalty_cycles(squashed, self.params.squash_width)
        self.fetch_stall_until = max(self.fetch_stall_until, self.cycle + penalty)
        # Only a program-path trigger can have squashed the *whole* injected
        # stream; a handler-internal mispredict leaves the microcode (older
        # than the branch) intact and uses normal recovery (§4.2).
        self.strategy.on_squash(
            new_fetch_pc, squashed_interrupt_path and not trigger_from_interrupt
        )
        if self.invariant_probe is not None:
            self.invariant_probe("squash", self)

    def flush_all(self) -> Tuple[int, int]:
        """Interrupt-style full flush; returns (resume_pc, num_squashed).

        The resume PC is the oldest uncommitted program instruction (or the
        current fetch PC if the ROB is empty).
        """
        resume_pc = self.rob[0].pc if self.rob else self.fetch_pc
        num = len(self.rob)
        for uop in self.rob:
            uop.squashed = True
            if uop.state in (ST_WAITING, ST_READY):
                self.iq_count -= 1
        self.rob.clear()
        self._serialize_until = -1
        self.stats.squashed_uops += num
        self.lsq.drop_squashed()
        self.reg_producer.clear()
        self.macro_queue = []
        self.macro_pos = 0
        self.macro_pc = -1
        self.inject_queue = []
        self.inject_pos = 0
        self._last_chain_uop = None
        self.interrupt_path = False
        self.wait_reason = None
        self._current_fetch_line = -1
        if self.invariant_probe is not None:
            self.invariant_probe("flush", self)
        return resume_pc, num

    def _rebuild_rename(self) -> None:
        self.reg_producer.clear()
        for uop in self.rob:
            if uop.dest is not None and uop.state != ST_DONE:
                self.reg_producer[uop.dest] = uop
            elif uop.dest is not None:
                # Done-but-uncommitted producers still hold the latest value.
                self.reg_producer[uop.dest] = uop

    # ------------------------------------------------------------------
    # Issue stage
    # ------------------------------------------------------------------

    def _issue_stage(self) -> None:
        if self._serialize_until >= 0:
            self.stats.serialize_stall_cycles += 1
            return
        budget = self.params.issue_width
        deferred: List[Tuple[int, int, UOp]] = []
        ready_heap = self.ready_heap
        cycle = self.cycle
        while budget > 0 and ready_heap and ready_heap[0][0] <= cycle:
            _, seq, uop = heapq.heappop(ready_heap)
            if uop.squashed or uop.state != ST_READY:
                continue
            if uop.is_serializing and (not self.rob or self.rob[0] is not uop):
                deferred.append((self.cycle + 1, seq, uop))
                continue
            if (
                uop.op is Op.LOAD
                and (uop.pc, uop.is_micro) in self._conservative_loads
                and self.lsq.has_unresolved_older_store(uop)
            ):
                # A load that has violated memory ordering before waits for
                # older store addresses (store-set-style dependence predictor).
                deferred.append((self.cycle + 1, seq, uop))
                continue
            if not self.fus.try_acquire(uop.op, self.cycle, uop.fu_class):
                deferred.append((self.cycle + 1, seq, uop))
                continue
            self._start_execute(uop)
            budget -= 1
            if uop.is_serializing:
                break
        for item in deferred:
            heapq.heappush(self.ready_heap, item)

    def _start_execute(self, uop: UOp) -> None:
        uop.state = ST_EXECUTING
        self.iq_count -= 1
        latency = self.fus._latency[uop.op] + uop.extra_latency
        op = uop.op
        if op is Op.LOAD:
            latency = self._execute_load(uop)
        elif op is Op.STORE:
            latency = self._execute_store(uop) + uop.extra_latency
        else:
            self._compute_result(uop)
        if uop.is_serializing:
            self._serialize_until = self.cycle + latency
        if uop.is_branch:
            self._compute_branch_outcome(uop)
        if uop.semantic == "senduipi_entry":
            self.trace.record(self.cycle, "senduipi_start", core=self.core_id)
        uop.complete_cycle = self.cycle + max(1, latency)
        heapq.heappush(self.exec_heap, (uop.complete_cycle, uop.seq, uop))

    def _resolve_mem_addr(self, uop: UOp) -> int:
        if uop.semantic in mc.ARCH_ADDR_SEMANTICS:
            return self._arch_addr(uop)
        if not uop.src_regs:
            return uop.imm
        base = uop.source_value(uop.src_regs[0], self.arch_regs)
        return (base + uop.imm) & MASK64

    def _arch_addr(self, uop: UOp) -> int:
        semantic = uop.semantic
        if semantic == mc.SEM_UITT_LOAD:
            if self.uintr.uitt_base is None:
                raise ProtocolError("senduipi without a registered UITT")
            return self.uintr.uitt_base + 16 * uop.uitt_index
        if semantic in (mc.SEM_UPID_SET_PIR, mc.SEM_UPID_READ_NDST):
            entry_upid, _ = self._uitt_entry(uop.uitt_index)
            offset = 8 if semantic == mc.SEM_UPID_SET_PIR else 0
            return entry_upid + offset
        if semantic == mc.SEM_NOTIF_READ_PIR:
            if self.uintr.upid_addr is None:
                raise ProtocolError("notification processing without a UPID")
            return self.uintr.upid_addr + 8
        if semantic == mc.SEM_NOTIF_CLEAR_ON:
            return self.uintr.upid_addr if self.uintr.upid_addr is not None else 0
        raise SimulationError(f"no architectural address for semantic {semantic!r}")

    def _execute_load(self, uop: UOp) -> int:
        uop.addr = self._resolve_mem_addr(uop)
        forwarded = self.lsq.forward_value(uop)
        if forwarded is not None:
            uop.result = forwarded
            if self._macro_rec is not None:
                self._macro_rec.append((uop.seq, 1, FORWARD_LATENCY, 1, uop.addr))
            return FORWARD_LATENCY
        latency, value = self.hierarchy.load(uop.addr)
        uop.result = value
        if self._macro_rec is not None:
            self._macro_rec.append((uop.seq, 1, latency, 0, uop.addr))
        return latency

    def _execute_store(self, uop: UOp) -> int:
        uop.addr = self._resolve_mem_addr(uop)
        self._check_memory_order_violation(uop)
        if uop.semantic:
            # Microcode stores: the commit handler supplies the real value.
            uop.store_value = (
                uop.source_value(uop.src_regs[0], self.arch_regs) if uop.src_regs else 0
            )
        else:
            uop.store_value = uop.source_value(uop.src_regs[1], self.arch_regs)
        latency = self.hierarchy.store_probe(uop.addr)
        if self._macro_rec is not None:
            self._macro_rec.append((uop.seq, 0, latency, 0, uop.addr))
        return latency

    def _check_memory_order_violation(self, store: UOp) -> None:
        """Optimistic loads may have run ahead of this store to the same
        word: squash from the oldest violator and train the predictor so its
        next execution waits (memory-order replay)."""
        word = store.addr & ~0x7
        violator: Optional[UOp] = None
        for load in self.lsq.loads:
            if (
                load.seq > store.seq
                and not load.squashed
                and load.state in (ST_EXECUTING, ST_DONE)
                and load.addr is not None
                and (load.addr & ~0x7) == word
            ):
                if violator is None or load.seq < violator.seq:
                    violator = load
        if violator is None:
            return
        self._conservative_loads.add((violator.pc, violator.is_micro))
        self.stats.memory_order_squashes += 1
        if violator.is_micro:
            # Microcode loads cannot be refetched by PC; their values only
            # affect timing (the commit handlers re-read architectural
            # state), so train the predictor and let this one stand.
            return
        self._squash_after_seq(violator.seq - 1, violator.pc, violator.from_interrupt)

    def _compute_branch_outcome(self, uop: UOp) -> None:
        op = uop.op
        if op in (Op.JMP, Op.CALL):
            uop.actual_taken = True
            uop.actual_target = uop.target
            if op is Op.CALL:
                uop.result = uop.pc + 1  # link register value
            return
        if op is Op.RET:
            uop.actual_taken = True
            uop.actual_target = uop.source_value(RegNames.LR, self.arch_regs) & MASK64
            return
        lhs = uop.source_value(uop.src_regs[0], self.arch_regs)
        rhs = uop.source_value(uop.src_regs[1], self.arch_regs) if len(uop.src_regs) > 1 else uop.imm
        if op is Op.BEQ:
            taken = lhs == rhs
        elif op is Op.BNE:
            taken = lhs != rhs
        elif op is Op.BLT:
            taken = _signed(lhs) < _signed(rhs)
        else:  # BGE
            taken = _signed(lhs) >= _signed(rhs)
        uop.actual_taken = taken
        uop.actual_target = uop.target

    def _compute_result(self, uop: UOp) -> None:
        op = uop.op
        regs = self.arch_regs
        if op in (Op.ADD, Op.FADD):
            a = uop.source_value(uop.src_regs[0], regs) if uop.src_regs else 0
            b = uop.source_value(uop.src_regs[1], regs) if len(uop.src_regs) > 1 else uop.imm
            uop.result = (a + b) & MASK64
        elif op is Op.SUB:
            a = uop.source_value(uop.src_regs[0], regs) if uop.src_regs else 0
            b = uop.source_value(uop.src_regs[1], regs) if len(uop.src_regs) > 1 else uop.imm
            uop.result = (a - b) & MASK64
        elif op in (Op.MUL, Op.FMUL):
            a = uop.source_value(uop.src_regs[0], regs)
            b = uop.source_value(uop.src_regs[1], regs) if len(uop.src_regs) > 1 else uop.imm
            uop.result = (a * b) & MASK64
        elif op in (Op.DIV, Op.FDIV):
            a = uop.source_value(uop.src_regs[0], regs)
            b = uop.source_value(uop.src_regs[1], regs) if len(uop.src_regs) > 1 else uop.imm
            uop.result = (a // b) & MASK64 if b else 0
        elif op is Op.AND:
            a = uop.source_value(uop.src_regs[0], regs)
            b = uop.source_value(uop.src_regs[1], regs) if len(uop.src_regs) > 1 else uop.imm
            uop.result = a & b
        elif op is Op.OR:
            a = uop.source_value(uop.src_regs[0], regs)
            b = uop.source_value(uop.src_regs[1], regs) if len(uop.src_regs) > 1 else uop.imm
            uop.result = a | b
        elif op is Op.XOR:
            a = uop.source_value(uop.src_regs[0], regs)
            b = uop.source_value(uop.src_regs[1], regs) if len(uop.src_regs) > 1 else uop.imm
            uop.result = (a ^ b) & MASK64
        elif op is Op.SHL:
            a = uop.source_value(uop.src_regs[0], regs)
            uop.result = (a << (uop.imm & 63)) & MASK64
        elif op is Op.SHR:
            a = uop.source_value(uop.src_regs[0], regs)
            uop.result = (a & MASK64) >> (uop.imm & 63)
        elif op is Op.MOV:
            uop.result = uop.source_value(uop.src_regs[0], regs)
        elif op is Op.MOVI:
            uop.result = uop.imm & MASK64
        elif op is Op.RDTSC:
            uop.result = self.cycle
        elif op is Op.TESTUI:
            uop.result = int(self.uintr.uif)
        elif op is Op.UIRET:
            # Restores the pre-delivery stack pointer.
            uop.result = (uop.source_value(RegNames.SP, regs) + 24) & MASK64
        else:
            uop.result = 0

    # ------------------------------------------------------------------
    # Fetch / dispatch stage
    # ------------------------------------------------------------------

    def _fetch_stage(self) -> None:
        if self.wait_reason is not None:
            if self.wait_reason == "drain":
                self.strategy.on_drain_wait()
            return
        if self.cycle < self.fetch_stall_until:
            return
        budget = self.params.fetch_width
        micro_budget = self.timing.msrom_fetch_width
        while budget > 0:
            if not self._backend_has_room():
                break
            if self.inject_pos < len(self.inject_queue):
                if micro_budget <= 0:
                    break
                self._dispatch_microop(self.inject_queue[self.inject_pos], from_interrupt=True)
                self.inject_pos += 1
                micro_budget -= 1
                budget -= 1
                if self.inject_pos >= len(self.inject_queue):
                    # Microcode done: control transfers to the user handler.
                    self.inject_queue = []
                    self.inject_pos = 0
                    self._last_chain_uop = None
                    handler = self.uintr.handler_index
                    if handler is None:
                        raise ProtocolError("interrupt delivery with no registered handler")
                    self.fetch_pc = handler
                    self._current_fetch_line = -1
                    self.trace.record(self.cycle, "handler_fetch", core=self.core_id)
                continue
            if self.macro_pos < len(self.macro_queue):
                if micro_budget <= 0:
                    break
                is_last = self.macro_pos == len(self.macro_queue) - 1
                self._dispatch_microop(
                    self.macro_queue[self.macro_pos],
                    from_interrupt=self.interrupt_path,
                    macro_pc=self.macro_pc,
                    macro_first=self.macro_pos == 0,
                    macro_last=is_last,
                )
                self.macro_pos += 1
                micro_budget -= 1
                budget -= 1
                if self.macro_pos >= len(self.macro_queue):
                    self.macro_queue = []
                    self.macro_pos = 0
                    self.macro_pc = -1
                    self._last_chain_uop = None
                continue
            # Instruction boundary: a staged (tracked) interrupt may inject here.
            if self.strategy.try_inject_at_boundary():
                continue
            if not self._fetch_program_instruction():
                break
            budget -= 1

    def _backend_has_room(self) -> bool:
        lsq = self.lsq
        params = self.params
        return (
            len(self.rob) < params.rob_size
            and self.iq_count < params.iq_size
            and len(lsq.loads) < params.lq_size
            and len(lsq.stores) < params.sq_size
        )

    def _fetch_program_instruction(self) -> bool:
        """Fetch/decode one program instruction; False to stop this cycle."""
        if self.fetch_pc >= len(self.program) or self.fetch_pc < 0:
            return False
        addr = instruction_address(self.fetch_pc)
        line = addr // self.config.icache.line_bytes
        if line != self._current_fetch_line:
            latency = self.icache.fetch_latency(addr)
            self._current_fetch_line = line
            if latency > 0:
                self.fetch_stall_until = self.cycle + latency
                return False
        instr = self.program.at(self.fetch_pc)
        if self._trace_resume_pending:
            self._trace_resume_pending = False
            self.trace.record(self.cycle, "resume_fetch", core=self.core_id)
        op = instr.op
        if op is Op.SENDUIPI:
            self.macro_queue = mc.senduipi_routine_cached(self.timing, instr.imm)
            self.macro_pos = 0
            self.macro_pc = self.fetch_pc
            self._last_chain_uop = None
            self.fetch_pc += 1
            return True
        uop = self._dispatch_instruction(instr)
        if op is Op.UIRET:
            self.wait_reason = "uiret"
            return False
        if op is Op.HALT:
            self.wait_reason = "halt"
            return False
        if uop.is_branch:
            self._predict_and_redirect(uop, instr)
            if uop.pred_taken:
                return False  # taken branches end the fetch group
        else:
            self.fetch_pc += 1
        return True

    def _predict_and_redirect(self, uop: UOp, instr: Instruction) -> None:
        if instr.op in (Op.CALL, Op.RET):
            uop.ras_snapshot = self.predictor.ras.snapshot()
        taken, target, history = self.predictor.predict(self.fetch_pc, instr)
        uop.pred_taken = taken
        uop.pred_target = target
        uop.history_token = history
        if taken and target is not None:
            self.fetch_pc = target
            self._current_fetch_line = -1
        elif taken and target is None:
            # Predicted taken with unknown target (cold RET): stall until
            # the branch resolves — resolution redirects fetch.
            self.fetch_pc = self.fetch_pc + 1
            self.fetch_stall_until = self.cycle + self.params.frontend_depth
        else:
            self.fetch_pc = self.fetch_pc + 1

    def _dispatch_instruction(self, instr: Instruction) -> UOp:
        # Micro-op cache: a hit serves the *full* decoded template (register
        # slots, immediate, target, safepoint bit, extra latency) and skips
        # the decode stages; a miss decodes, fills the template, and pays the
        # full front-end depth (§4.4 carries the safepoint bit into the
        # cached encoding).
        pc = self.fetch_pc
        entry = self.uop_cache.lookup(pc)
        if entry is not None:
            depth = self.params.frontend_depth - self.uop_cache.hit_depth_bonus
            if depth < 1:
                depth = 1
            dest = entry.dest
            src_regs = entry.src_regs
            extra = entry.extra_latency
        else:
            extra = self.timing.stui_stall if instr.op is Op.STUI else 0
            dest = instr.dest_reg()
            src_regs = instr.source_regs()
            if instr.op is Op.UIRET:
                # uiret restores the pre-delivery stack pointer.
                dest = RegNames.SP
                src_regs = (RegNames.SP,)
            entry = self.uop_cache.fill(pc, instr, dest, src_regs, extra_latency=extra)
            depth = self.params.frontend_depth
        uop = UOp(
            seq=self._next_seq(),
            op=instr.op,
            pc=pc,
            frontend_ready=self.cycle + depth,
            instr=instr,
            from_interrupt=self.interrupt_path,
            dest=dest,
            src_regs=src_regs,
            imm=entry.imm,
            target=entry.target,
            safepoint=entry.safepoint,
            extra_latency=extra,
        )
        self._enter_backend(uop)
        return uop

    def _dispatch_microop(
        self,
        micro: MicroOp,
        from_interrupt: bool,
        macro_pc: int = -1,
        macro_first: bool = False,
        macro_last: bool = False,
    ) -> UOp:
        src_regs = micro.src_regs  # precomputed on the frozen MicroOp
        pc = macro_pc if macro_pc >= 0 else (
            self.uintr.ui_return_pc if self.uintr.ui_return_pc is not None else self.fetch_pc
        )
        uop = UOp(
            seq=self._next_seq(),
            op=micro.op,
            pc=pc,
            frontend_ready=self.cycle + self.params.frontend_depth,
            semantic=micro.semantic,
            is_micro=True,
            from_interrupt=from_interrupt,
            macro_last=macro_last,
            macro_first=macro_first,
            dest=micro.dest,
            src_regs=src_regs,
            imm=micro.imm,
            extra_latency=micro.extra_latency,
            uitt_index=micro.imm,
            chain=micro.chain,
        )
        self._enter_backend(uop, chain_to=self._last_chain_uop if micro.chain else None)
        self._last_chain_uop = uop
        return uop

    def _enter_backend(self, uop: UOp, chain_to: Optional[UOp] = None) -> None:
        self.stats.fetched_uops += 1
        # Rename: record producers for each source register.
        for reg in uop.src_regs:
            producer = self.reg_producer.get(reg)
            if producer is not None:
                uop.producers[reg] = producer
                if producer.state != ST_DONE:
                    uop.wait_count += 1
                    producer.dependents.append(uop)
        if chain_to is not None and chain_to.state != ST_DONE and not chain_to.squashed:
            uop.producers[CHAIN_KEY] = chain_to
            uop.wait_count += 1
            chain_to.dependents.append(uop)
        if uop.dest is not None:
            self.reg_producer[uop.dest] = uop
        self.rob.append(uop)
        self.iq_count += 1
        if uop.op in (Op.LOAD, Op.STORE):
            self.lsq.add(uop)
        if uop.wait_count == 0:
            self._mark_ready(uop, uop.frontend_ready)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # Interrupt injection (called by delivery strategies)
    # ------------------------------------------------------------------

    def safepoint_at(self, pc: int) -> bool:
        """Is the instruction at ``pc`` a safepoint?  Consults the micro-op
        cache's safepoint bit first (§4.4: optimized front-end paths must
        still recognize safepoints), falling back to the decoder view."""
        if not 0 <= pc < len(self.program):
            return False
        entry = self.uop_cache.lookup(pc)
        if entry is not None:
            return entry.safepoint
        return self.program.at(pc).safepoint

    def inject_interrupt(
        self,
        pending: PendingInterrupt,
        next_pc: int,
        refill_stall: int = 0,
    ) -> None:
        """Queue the receive microcode for injection at the front-end."""
        if self.uintr.handler_index is None:
            raise ProtocolError("cannot deliver a user interrupt with no handler registered")
        needs_notification = pending.kind is InterruptKind.UIPI
        self.inject_queue = mc.receive_routine_cached(self.timing, needs_notification)
        self.inject_pos = 0
        self._last_chain_uop = None
        self.interrupt_path = True
        self.uintr.ui_return_pc = next_pc
        self.delivery_state = "inflight"
        self.current_interrupt = pending
        self.wait_reason = None
        if refill_stall > 0:
            self.fetch_stall_until = max(self.fetch_stall_until, self.cycle + refill_stall)
        self.trace.record(
            self.cycle,
            "inject",
            core=self.core_id,
            intr_kind=pending.kind.value,
            next_pc=next_pc,
        )
        if self.invariant_probe is not None:
            self.invariant_probe("inject", self)


def _signed(value: int) -> int:
    value &= MASK64
    return value - (1 << 64) if value >= (1 << 63) else value
