"""The µ-ISA: a small register machine with the structure the experiments need.

We do not decode real x86.  What the paper's results depend on is *structural*:
register dataflow (dependence chains, the stack-pointer dependence of §6.1),
memory operations against a cache hierarchy (pointer chasing, UPID reads,
polling lines), branches with prediction (polling checks, misspeculation
interacting with tracked interrupts), and the microcoded user-interrupt
instructions.  The µ-ISA provides exactly those.

Registers are ``r0``-``r15``; by convention ``r15`` is the stack pointer
(``sp``) and ``r14`` the link register (``lr``) used by CALL/RET.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum, auto
from typing import Optional, Union

from repro.common.errors import ConfigError

NUM_REGS = 16


class RegNames:
    """Conventional register aliases."""

    SP = 15  # stack pointer — the register the §6.1 worst case targets
    LR = 14  # link register for CALL/RET
    ZERO = 0  # by convention programs keep r0 == 0 (not enforced in hardware)


class Op(Enum):
    """Operation kinds of the µ-ISA (program-visible and microcode-internal)."""

    # Integer ALU
    ADD = auto()
    SUB = auto()
    MUL = auto()
    DIV = auto()
    AND = auto()
    OR = auto()
    XOR = auto()
    SHL = auto()
    SHR = auto()
    MOV = auto()
    MOVI = auto()
    # Floating point (linpack/matmul kernels)
    FADD = auto()
    FMUL = auto()
    FDIV = auto()
    # Memory
    LOAD = auto()
    STORE = auto()
    # Control flow
    BEQ = auto()
    BNE = auto()
    BLT = auto()
    BGE = auto()
    JMP = auto()
    CALL = auto()
    RET = auto()
    # Special / system
    RDTSC = auto()
    NOP = auto()
    HALT = auto()
    # User-interrupt ISA (UIPI, §3.2)
    SENDUIPI = auto()
    UIRET = auto()
    CLUI = auto()
    STUI = auto()
    TESTUI = auto()
    # xUI kernel-bypass timer ISA (§4.3)
    SETTIMER = auto()
    CLRTIMER = auto()
    # Microcode-internal operations (never appear in programs)
    MSR_WRITE = auto()  # serializing; writing the ICR sends the IPI
    MSR_READ = auto()
    UJMP = auto()  # microcode jump to the registered user handler
    UEND = auto()  # marks the end of a microcode routine


#: Ops whose result comes from the integer ALU network.
INT_ALU_OPS = frozenset(
    {Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.MOV, Op.MOVI}
)
MUL_OPS = frozenset({Op.MUL})
DIV_OPS = frozenset({Op.DIV})
FP_OPS = frozenset({Op.FADD, Op.FMUL, Op.FDIV})
MEM_OPS = frozenset({Op.LOAD, Op.STORE})
COND_BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.BGE})
UNCOND_BRANCH_OPS = frozenset({Op.JMP, Op.CALL, Op.RET})
BRANCH_OPS = COND_BRANCH_OPS | UNCOND_BRANCH_OPS
#: Instructions implemented via MSROM microcode expansion.
MICROCODED_OPS = frozenset({Op.SENDUIPI})
#: Instructions that serialize the pipeline when they execute.
SERIALIZING_OPS = frozenset({Op.MSR_WRITE, Op.STUI})


@dataclass(frozen=True)
class Instruction:
    """One µ-ISA instruction.

    ``target`` holds a label name until :meth:`repro.cpu.program.ProgramBuilder.build`
    resolves it to an instruction index.  ``safepoint`` models the x86
    instruction-prefix encoding of hardware safepoints (§4.4): any
    instruction can carry it, turning it into a point where safepoint-mode
    interrupt delivery is permitted.
    """

    op: Op
    dest: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    imm: int = 0
    target: Optional[Union[str, int]] = None
    safepoint: bool = False
    comment: str = ""

    def __post_init__(self) -> None:
        for name, reg in (("dest", self.dest), ("src1", self.src1), ("src2", self.src2)):
            if reg is not None and not 0 <= reg < NUM_REGS:
                raise ConfigError(f"{name} register out of range: {reg}")

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_cond_branch(self) -> bool:
        return self.op in COND_BRANCH_OPS

    @property
    def is_mem(self) -> bool:
        return self.op in MEM_OPS

    @property
    def is_microcoded(self) -> bool:
        return self.op in MICROCODED_OPS

    def with_safepoint(self) -> "Instruction":
        """Return a copy carrying the safepoint prefix."""
        return replace(self, safepoint=True)

    def source_regs(self) -> tuple:
        """Registers read by this instruction (order is irrelevant)."""
        sources = []
        if self.src1 is not None:
            sources.append(self.src1)
        if self.src2 is not None:
            sources.append(self.src2)
        if self.op is Op.RET:
            sources.append(RegNames.LR)
        return tuple(sources)

    def dest_reg(self) -> Optional[int]:
        """Register written by this instruction, if any."""
        if self.op is Op.CALL:
            return RegNames.LR
        if self.op in (Op.STORE, Op.HALT, Op.NOP) or self.op in BRANCH_OPS:
            return self.dest if self.op not in BRANCH_OPS else None
        return self.dest


# ---------------------------------------------------------------------------
# Construction helpers — make program builders read like assembly.
# ---------------------------------------------------------------------------


def add(dest: int, src1: int, src2: int) -> Instruction:
    return Instruction(Op.ADD, dest=dest, src1=src1, src2=src2)


def addi(dest: int, src1: int, imm: int) -> Instruction:
    """Add-immediate is encoded as ADD with src2=None and an immediate."""
    return Instruction(Op.ADD, dest=dest, src1=src1, imm=imm)


def sub(dest: int, src1: int, src2: int) -> Instruction:
    return Instruction(Op.SUB, dest=dest, src1=src1, src2=src2)


def subi(dest: int, src1: int, imm: int) -> Instruction:
    return Instruction(Op.SUB, dest=dest, src1=src1, imm=imm)


def mul(dest: int, src1: int, src2: int) -> Instruction:
    return Instruction(Op.MUL, dest=dest, src1=src1, src2=src2)


def div(dest: int, src1: int, src2: int) -> Instruction:
    return Instruction(Op.DIV, dest=dest, src1=src1, src2=src2)


def band(dest: int, src1: int, src2: int) -> Instruction:
    return Instruction(Op.AND, dest=dest, src1=src1, src2=src2)


def andi(dest: int, src1: int, imm: int) -> Instruction:
    return Instruction(Op.AND, dest=dest, src1=src1, imm=imm)


def bxor(dest: int, src1: int, src2: int) -> Instruction:
    return Instruction(Op.XOR, dest=dest, src1=src1, src2=src2)


def xori(dest: int, src1: int, imm: int) -> Instruction:
    return Instruction(Op.XOR, dest=dest, src1=src1, imm=imm)


def shli(dest: int, src1: int, imm: int) -> Instruction:
    return Instruction(Op.SHL, dest=dest, src1=src1, imm=imm)


def shri(dest: int, src1: int, imm: int) -> Instruction:
    return Instruction(Op.SHR, dest=dest, src1=src1, imm=imm)


def mov(dest: int, src1: int) -> Instruction:
    return Instruction(Op.MOV, dest=dest, src1=src1)


def movi(dest: int, imm: int) -> Instruction:
    return Instruction(Op.MOVI, dest=dest, imm=imm)


def fadd(dest: int, src1: int, src2: int) -> Instruction:
    return Instruction(Op.FADD, dest=dest, src1=src1, src2=src2)


def fmul(dest: int, src1: int, src2: int) -> Instruction:
    return Instruction(Op.FMUL, dest=dest, src1=src1, src2=src2)


def load(dest: int, base: int, offset: int = 0) -> Instruction:
    return Instruction(Op.LOAD, dest=dest, src1=base, imm=offset)


def store(src: int, base: int, offset: int = 0) -> Instruction:
    return Instruction(Op.STORE, src1=base, src2=src, imm=offset)


def beq(src1: int, src2: int, target: Union[str, int]) -> Instruction:
    return Instruction(Op.BEQ, src1=src1, src2=src2, target=target)


def bne(src1: int, src2: int, target: Union[str, int]) -> Instruction:
    return Instruction(Op.BNE, src1=src1, src2=src2, target=target)


def blt(src1: int, src2: int, target: Union[str, int]) -> Instruction:
    return Instruction(Op.BLT, src1=src1, src2=src2, target=target)


def bge(src1: int, src2: int, target: Union[str, int]) -> Instruction:
    return Instruction(Op.BGE, src1=src1, src2=src2, target=target)


def beqi(src1: int, imm: int, target: Union[str, int]) -> Instruction:
    """Branch if ``reg == imm`` (immediate-compare form)."""
    return Instruction(Op.BEQ, src1=src1, imm=imm, target=target)


def bnei(src1: int, imm: int, target: Union[str, int]) -> Instruction:
    return Instruction(Op.BNE, src1=src1, imm=imm, target=target)


def blti(src1: int, imm: int, target: Union[str, int]) -> Instruction:
    return Instruction(Op.BLT, src1=src1, imm=imm, target=target)


def bgei(src1: int, imm: int, target: Union[str, int]) -> Instruction:
    return Instruction(Op.BGE, src1=src1, imm=imm, target=target)


def jmp(target: Union[str, int]) -> Instruction:
    return Instruction(Op.JMP, target=target)


def call(target: Union[str, int]) -> Instruction:
    return Instruction(Op.CALL, target=target)


def ret() -> Instruction:
    return Instruction(Op.RET)


def rdtsc(dest: int) -> Instruction:
    return Instruction(Op.RDTSC, dest=dest)


def nop() -> Instruction:
    return Instruction(Op.NOP)


def halt() -> Instruction:
    return Instruction(Op.HALT)


def senduipi(uitt_index: int) -> Instruction:
    return Instruction(Op.SENDUIPI, imm=uitt_index)


def uiret() -> Instruction:
    return Instruction(Op.UIRET)


def clui() -> Instruction:
    return Instruction(Op.CLUI)


def stui() -> Instruction:
    return Instruction(Op.STUI)


def testui(dest: int) -> Instruction:
    return Instruction(Op.TESTUI, dest=dest)


def set_timer(cycles_reg: int, mode_reg: int) -> Instruction:
    """xUI ``set_timer(cycles, mode)`` — §4.3."""
    return Instruction(Op.SETTIMER, src1=cycles_reg, src2=mode_reg)


def clear_timer() -> Instruction:
    return Instruction(Op.CLRTIMER)


def safepoint() -> Instruction:
    """A standalone safepoint (a NOP carrying the safepoint prefix)."""
    return Instruction(Op.NOP, safepoint=True)
