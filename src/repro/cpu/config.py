"""Core configuration (Table 3) and calibration timing parameters (§3.4/§3.5).

``CoreParams.sapphire_rapids_like()`` reproduces Table 3 of the paper — the
baseline x86 core the gem5 evaluation models.  ``TimingParams`` collects the
constants our characterization targets (Table 2 / Figure 2): wire latencies,
MSROM entry costs, and cache latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CoreParams:
    """Structural parameters of the out-of-order core (Table 3)."""

    frequency_ghz: float = 2.0
    fetch_width: int = 6
    decode_width: int = 6
    issue_width: int = 10
    retire_width: int = 10
    squash_width: int = 10
    rob_size: int = 384
    iq_size: int = 168
    #: Decode/rename pipeline depth: cycles between fetch and issue
    #: eligibility; the redirect/refill penalty of mispredicts and flushes.
    frontend_depth: int = 8
    lq_size: int = 128
    sq_size: int = 72
    int_alu_units: int = 6
    mul_units: int = 2
    fp_units: int = 3
    # Functional-unit latencies (cycles)
    int_alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 12
    fp_latency: int = 3
    fp_div_latency: int = 12

    def __post_init__(self) -> None:
        for name in (
            "fetch_width",
            "decode_width",
            "issue_width",
            "retire_width",
            "squash_width",
            "rob_size",
            "iq_size",
            "frontend_depth",
            "lq_size",
            "sq_size",
            "int_alu_units",
            "mul_units",
            "fp_units",
            "int_alu_latency",
            "mul_latency",
            "div_latency",
            "fp_latency",
            "fp_div_latency",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")
        if self.frequency_ghz != self.frequency_ghz or self.frequency_ghz <= 0:
            raise ConfigError(
                f"frequency_ghz must be positive, got {self.frequency_ghz}"
            )

    @classmethod
    def sapphire_rapids_like(cls) -> "CoreParams":
        """The Table 3 baseline configuration."""
        return cls()

    @classmethod
    def small(cls) -> "CoreParams":
        """A reduced configuration for fast unit tests."""
        return cls(
            fetch_width=2,
            decode_width=2,
            issue_width=4,
            retire_width=4,
            squash_width=4,
            rob_size=32,
            iq_size=16,
            lq_size=16,
            sq_size=16,
            int_alu_units=2,
            mul_units=1,
            fp_units=1,
        )


@dataclass(frozen=True)
class CacheParams:
    """One cache level: size/associativity/line plus hit latency."""

    size_bytes: int = 32 * 1024
    associativity: int = 8
    line_bytes: int = 64
    hit_latency: int = 4

    def __post_init__(self) -> None:
        for name in ("size_bytes", "associativity", "line_bytes"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")
        if self.hit_latency < 0:
            raise ConfigError(
                f"hit_latency must be non-negative, got {self.hit_latency}"
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigError(
                f"line_bytes must be a power of two, got {self.line_bytes}"
            )
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ConfigError(
                "cache size must be a multiple of associativity * line size"
            )
        sets = self.size_bytes // (self.associativity * self.line_bytes)
        if sets & (sets - 1):
            raise ConfigError(
                f"cache geometry yields {sets} sets; the set count must be a "
                f"power of two (the index is taken from address bits)"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class MemoryParams:
    """Latencies of the hierarchy below L1 (cycles)."""

    l2_hit_latency: int = 14
    llc_hit_latency: int = 42
    dram_latency: int = 200
    #: Latency to fetch a line most recently written by another core —
    #: a cross-core transfer through the shared LLC.  The UPID read in the
    #: notification microcode and the polled flag line pay this.
    remote_dirty_latency: int = 90

    def __post_init__(self) -> None:
        for name in (
            "l2_hit_latency",
            "llc_hit_latency",
            "dram_latency",
            "remote_dirty_latency",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"{name} must be non-negative, got {value}")


@dataclass(frozen=True)
class TimingParams:
    """Calibration constants targeted at Table 2 / Figure 2.

    These are the knobs our characterization study (§3) fixes: how long the
    APIC-to-APIC wire takes, how expensive MSROM entry and serializing
    micro-ops are, and the shape of the ``senduipi`` microcode.  Defaults are
    calibrated so the cycle tier reproduces the paper's measured constants at
    the Table 3 configuration.
    """

    #: senduipi ICR write -> receiver core interrupted (Figure 2: cycle 380,
    #: minus the sender-side microcode that precedes the ICR write).
    ipi_wire_latency: int = 140
    #: Extra cycles to begin fetching a microcode routine from the MSROM.
    msrom_entry_latency: int = 14
    #: Number of micro-ops in the senduipi MSROM routine (§3.5: 57).
    senduipi_uop_count: int = 57
    #: senduipi serialization stalls (§3.5: ~279 stall cycles total), split
    #: around the ICR write so the IPI launches at the right offset
    #: (Figure 2: receiver interrupted at ~380 while senduipi costs ~383).
    senduipi_pre_icr_stall: int = 30
    senduipi_icr_stall: int = 30
    senduipi_post_icr_stall: int = 310
    #: Cost of stui (serializing, Table 2: 32 cycles) and clui (2 cycles).
    stui_stall: int = 28
    #: Stall for microcode-internal UIRR updates in the delivery routine.
    uirr_write_stall: int = 55
    #: Stall for the UIRR latch in notification processing (the UPID-path
    #: cost that separates tracked IPIs at 231 cycles from tracked
    #: timer/device interrupts at 105, §4.2).
    notif_latch_stall: int = 110
    #: Stall for the UIF clear in the delivery microcode.
    uif_write_stall: int = 38
    #: MSROM sequencing rate (micro-ops fetchable per cycle from microcode).
    msrom_fetch_width: int = 2
    #: Pipeline-refill penalty after a full flush: cycles before the first
    #: microcode micro-op can issue (part of Figure 2's 424-cycle gap).
    flush_refill_latency: int = 310
    #: gem5's legacy interrupt model adds a fixed pad after draining (§5.2).
    gem5_drain_pad: int = 13

    def __post_init__(self) -> None:
        if self.msrom_fetch_width <= 0:
            raise ConfigError(
                f"msrom_fetch_width must be positive, got {self.msrom_fetch_width}"
            )
        if self.senduipi_uop_count <= 0:
            raise ConfigError(
                f"senduipi_uop_count must be positive, got {self.senduipi_uop_count}"
            )
        for name in (
            "ipi_wire_latency",
            "msrom_entry_latency",
            "senduipi_pre_icr_stall",
            "senduipi_icr_stall",
            "senduipi_post_icr_stall",
            "stui_stall",
            "uirr_write_stall",
            "notif_latch_stall",
            "uif_write_stall",
            "flush_refill_latency",
            "gem5_drain_pad",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"{name} must be non-negative, got {value}")


@dataclass(frozen=True)
class SystemConfig:
    """Bundle of all cycle-tier configuration."""

    core: CoreParams = field(default_factory=CoreParams.sapphire_rapids_like)
    icache: CacheParams = field(default_factory=CacheParams)
    dcache: CacheParams = field(default_factory=CacheParams)
    memory: MemoryParams = field(default_factory=MemoryParams)
    timing: TimingParams = field(default_factory=TimingParams)

    @classmethod
    def sapphire_rapids_like(cls) -> "SystemConfig":
        return cls()

    @classmethod
    def small(cls) -> "SystemConfig":
        return cls(core=CoreParams.small())
