"""IR-to-IR instrumentation passes (the Concord / safepoint transformations).

Both passes instrument the same sites — every function entry and every loop
back-edge — which is the coverage guarantee compiler-based preemption needs:
any cycle through the control-flow graph crosses one of them (§2).
"""

from __future__ import annotations

import copy
from typing import List

from repro.compiler.instrument import DEFAULT_POLL_FLAG_ADDR
from repro.compiler.ir import Block, Function, Loop, Module, Node, PollCheck, Safepoint


def _instrument_nodes(nodes: List[Node], make_marker) -> None:
    for node in nodes:
        if isinstance(node, Loop):
            _instrument_nodes(node.body, make_marker)
            marker = make_marker()
            if isinstance(marker, Safepoint):
                # Fold the safepoint prefix onto the back-edge branch itself
                # (§4.4: "transforming any instruction into a hardware
                # safepoint") — zero extra instructions.
                node.safepoint_backedge = True
            else:
                node.body.append(marker)
        elif isinstance(node, Block):
            _instrument_nodes(node.body, make_marker)


def _instrument_module(module: Module, make_marker) -> Module:
    instrumented = copy.deepcopy(module)
    for function in instrumented.functions.values():
        function.body.insert(0, make_marker())
        _instrument_nodes(function.body, make_marker)
    return instrumented


def insert_polling_checks(
    module: Module, flag_addr: int = DEFAULT_POLL_FLAG_ADDR
) -> Module:
    """Insert a Concord-style poll of ``flag_addr`` at every function entry
    and loop back-edge; returns a new module."""
    return _instrument_module(module, lambda: PollCheck(flag_addr=flag_addr))


def insert_safepoints(module: Module) -> Module:
    """Insert hardware safepoints at every function entry and loop back-edge;
    returns a new module."""
    return _instrument_module(module, Safepoint)
