"""Preemption instrumentation hooks (Concord-style polling vs. HW safepoints).

An :class:`Instrumenter` is threaded through the µ-ISA benchmark builders
(:mod:`repro.apps.microbench`), which call it at every function entry and
loop back-edge — the sites compiler-based preemption instruments (§2, §6.1).

- :class:`PollingInstrumenter` emits the Concord-style check: load a shared
  preemption flag and branch to a yield stub when it is set.  Each check
  costs a load plus a (predicted) branch on the hot path — the overhead
  Figure 5 charges to polling.
- :class:`SafepointInstrumenter` marks the back-edge branch itself with the
  safepoint prefix (§4.4) — zero extra instructions on the hot path.
- :class:`NullInstrumenter` leaves the program unmodified (the UIPI and
  baseline configurations).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.cpu import isa
from repro.cpu.isa import Instruction
from repro.cpu.program import ProgramBuilder

#: Register the polling check may clobber (reserved by convention).
POLL_SCRATCH = 11
#: Register pre-loaded with the preemption-flag address.
POLL_FLAG_REG = 10
#: Default shared-memory address of the preemption flag.
DEFAULT_POLL_FLAG_ADDR = 0x60_0000


class Instrumenter:
    """Base hooks; the default implementation instruments nothing."""

    name = "none"

    def setup(self, builder: ProgramBuilder) -> None:
        """Called once at program start (before the first instruction)."""

    def at_function_entry(self, builder: ProgramBuilder) -> None:
        """Called at each function entry point."""

    def at_loop_backedge(self, builder: ProgramBuilder) -> None:
        """Called just before each loop back-edge branch."""

    def wrap_backedge(self, branch: Instruction) -> Instruction:
        """May transform the back-edge branch itself (e.g. add a prefix)."""
        return branch

    def finalize(self, builder: ProgramBuilder) -> None:
        """Called after the program body (before the handler), e.g. to emit
        the yield stub the checks branch to."""


class NullInstrumenter(Instrumenter):
    """No instrumentation (baseline / pure-UIPI configurations)."""


class SafepointInstrumenter(Instrumenter):
    """Hardware safepoints (§4.4): prefix the instrumentation sites.

    Function entries get a safepoint-prefixed NOP (entry instructions vary,
    so prefixing a dedicated NOP keeps the builder simple); back-edges have
    the prefix folded onto the branch itself, costing nothing.
    """

    name = "safepoint"

    def at_function_entry(self, builder: ProgramBuilder) -> None:
        builder.emit(isa.safepoint())

    def wrap_backedge(self, branch: Instruction) -> Instruction:
        return branch.with_safepoint()


class PollingInstrumenter(Instrumenter):
    """Concord-style compiler polling: check a shared flag at every site.

    The hot path is ``load flag; bne -> yield`` — cheap but paid on *every*
    function entry and loop iteration, which is exactly the workload-
    dependent overhead the paper measures at 8.5-11% for a 5 µs quantum
    (§6.1).  When the flag is found set, control transfers to a yield stub
    that clears the flag and performs ``yield_cost`` instructions of
    scheduler work.
    """

    name = "polling"

    def __init__(
        self,
        flag_addr: int = DEFAULT_POLL_FLAG_ADDR,
        yield_cost: int = 40,
        yield_counter_addr: Optional[int] = None,
    ) -> None:
        self.flag_addr = flag_addr
        self.yield_cost = yield_cost
        self.yield_counter_addr = yield_counter_addr
        self._site_counter = itertools.count()
        self._yield_label: Optional[str] = None
        #: (trampoline_label, continue_label) pairs emitted out of line.
        self._trampolines: list = []

    def setup(self, builder: ProgramBuilder) -> None:
        builder.emit(isa.movi(POLL_FLAG_REG, self.flag_addr))

    def _emit_check(self, builder: ProgramBuilder) -> None:
        """The hot path is load + not-taken branch; the yield call lives in
        an out-of-line trampoline, as a compiler would lay it out."""
        site = next(self._site_counter)
        trampoline = f"__poll_yield_site_{site}"
        cont = f"__poll_cont_{site}"
        self._ensure_yield_label()
        builder.emit(isa.load(POLL_SCRATCH, POLL_FLAG_REG, 0))
        builder.emit(isa.bnei(POLL_SCRATCH, 0, trampoline))
        builder.label(cont)
        self._trampolines.append((trampoline, cont))

    def _ensure_yield_label(self) -> None:
        if self._yield_label is None:
            self._yield_label = "__poll_yield"

    def at_function_entry(self, builder: ProgramBuilder) -> None:
        self._emit_check(builder)

    def at_loop_backedge(self, builder: ProgramBuilder) -> None:
        self._emit_check(builder)

    def finalize(self, builder: ProgramBuilder) -> None:
        if self._yield_label is None:
            return
        for trampoline, cont in self._trampolines:
            builder.label(trampoline)
            builder.emit(isa.call(self._yield_label))
            builder.emit(isa.jmp(cont))
        builder.label(self._yield_label)
        # Clear the flag, bump the yield counter, do scheduler work, return.
        builder.emit(isa.movi(POLL_SCRATCH, 0))
        builder.emit(isa.store(POLL_SCRATCH, POLL_FLAG_REG, 0))
        if self.yield_counter_addr is not None:
            builder.emit(isa.movi(12, self.yield_counter_addr))
            builder.emit(isa.load(POLL_SCRATCH, 12, 0))
            builder.emit(isa.addi(POLL_SCRATCH, POLL_SCRATCH, 1))
            builder.emit(isa.store(POLL_SCRATCH, 12, 0))
        for _ in range(self.yield_cost):
            builder.emit(isa.addi(POLL_SCRATCH, POLL_SCRATCH, 1))
        builder.emit(isa.ret())
