"""Compiler support: a small IR and the preemption instrumentation passes.

The paper's Figure 5 compares three preemption mechanisms on instrumented
programs: Concord-style *polling* instrumentation (a check at every function
entry and loop back-edge), xUI *hardware safepoints* (a safepoint prefix at
the same sites, §4.4), and plain UIPI (no instrumentation).  This package
provides those passes, both as :class:`Instrumenter` hooks consumed by the
µ-ISA benchmark builders and as IR-to-IR transformations over
:mod:`repro.compiler.ir`.
"""

from repro.compiler.instrument import (
    Instrumenter,
    NullInstrumenter,
    PollingInstrumenter,
    SafepointInstrumenter,
)
from repro.compiler.ir import (
    Function,
    Module,
    Block,
    Loop,
    RawOp,
    lower_module,
)
from repro.compiler.passes import insert_polling_checks, insert_safepoints

__all__ = [
    "Instrumenter",
    "NullInstrumenter",
    "PollingInstrumenter",
    "SafepointInstrumenter",
    "Function",
    "Module",
    "Block",
    "Loop",
    "RawOp",
    "lower_module",
    "insert_polling_checks",
    "insert_safepoints",
]
