"""A miniature structured IR lowered to the µ-ISA.

The IR exists so the instrumentation passes of §6.1 can be expressed the way
Concord expresses them — as compiler transformations over functions and
loops — rather than by hand-editing assembly.  It is intentionally small:

- :class:`Module`: named functions, one of which is the entry point.
- :class:`Function`: a body of nodes; lowering adds the prologue/epilogue
  (link-register save/restore) so nested calls work.
- :class:`Block`: a straight-line sequence of nodes.
- :class:`Loop`: a counted loop over a body (counter in a caller-chosen
  register); the back-edge is the instrumentation site.
- :class:`RawOp`: one µ-ISA instruction.
- :class:`CallFn`: a call to another function in the module.
- :class:`PollCheck` / :class:`Safepoint`: instrumentation markers inserted
  by the passes and expanded at lowering time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.common.errors import ConfigError
from repro.cpu import isa
from repro.cpu.isa import Instruction
from repro.cpu.program import Program, ProgramBuilder
from repro.compiler.instrument import POLL_FLAG_REG, POLL_SCRATCH


@dataclass
class RawOp:
    """A single µ-ISA instruction."""

    instruction: Instruction


@dataclass
class CallFn:
    """Call another function in the module."""

    name: str


@dataclass
class PollCheck:
    """Concord-style preemption check (inserted by insert_polling_checks)."""

    flag_addr: int


@dataclass
class Safepoint:
    """Hardware safepoint marker (inserted by insert_safepoints)."""


@dataclass
class Block:
    body: List["Node"] = field(default_factory=list)


@dataclass
class Loop:
    """``for counter_reg in range(count): body`` with an instrumentable back-edge."""

    counter_reg: int
    count: int
    body: List["Node"] = field(default_factory=list)
    #: Set by insert_safepoints: fold a safepoint prefix onto the back-edge.
    safepoint_backedge: bool = False

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigError("loop count must be non-negative")


Node = Union[RawOp, CallFn, PollCheck, Safepoint, Block, Loop]


@dataclass
class Function:
    name: str
    body: List[Node] = field(default_factory=list)


@dataclass
class Module:
    functions: Dict[str, Function] = field(default_factory=dict)
    entry: Optional[str] = None

    def add(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ConfigError(f"function {function.name!r} defined twice")
        self.functions[function.name] = function
        if self.entry is None:
            self.entry = function.name
        return function


class _Lowerer:
    """Walks the IR emitting µ-ISA through a ProgramBuilder."""

    def __init__(self, module: Module, builder: ProgramBuilder) -> None:
        self.module = module
        self.builder = builder
        self._labels = itertools.count()
        self._poll_flag_loaded = False

    def _fresh(self, stem: str) -> str:
        return f"__{stem}_{next(self._labels)}"

    def lower(self) -> None:
        module = self.module
        if module.entry is None or module.entry not in module.functions:
            raise ConfigError("module has no entry function")
        b = self.builder
        b.emit(isa.call(f"__fn_{module.entry}"))
        b.emit(isa.halt())
        for function in module.functions.values():
            self._lower_function(function)

    def _lower_function(self, function: Function) -> None:
        b = self.builder
        b.label(f"__fn_{function.name}")
        b.emit(isa.subi(15, 15, 8))
        b.emit(isa.store(14, 15, 0))
        self._lower_nodes(function.body)
        b.emit(isa.load(14, 15, 0))
        b.emit(isa.addi(15, 15, 8))
        b.emit(isa.ret())

    def _lower_nodes(self, nodes: List[Node]) -> None:
        for node in nodes:
            self._lower_node(node)

    def _lower_node(self, node: Node) -> None:
        b = self.builder
        if isinstance(node, RawOp):
            b.emit(node.instruction)
        elif isinstance(node, Block):
            self._lower_nodes(node.body)
        elif isinstance(node, CallFn):
            if node.name not in self.module.functions:
                raise ConfigError(f"call to undefined function {node.name!r}")
            b.emit(isa.call(f"__fn_{node.name}"))
        elif isinstance(node, Safepoint):
            b.emit(isa.safepoint())
        elif isinstance(node, PollCheck):
            self._lower_poll_check(node)
        elif isinstance(node, Loop):
            self._lower_loop(node)
        else:
            raise ConfigError(f"unknown IR node: {node!r}")

    def _lower_poll_check(self, node: PollCheck) -> None:
        b = self.builder
        skip = self._fresh("poll_skip")
        b.emit(isa.movi(POLL_FLAG_REG, node.flag_addr))
        b.emit(isa.load(POLL_SCRATCH, POLL_FLAG_REG, 0))
        b.emit(isa.beqi(POLL_SCRATCH, 0, skip))
        # Inline yield: clear the flag (scheduler work is the caller's
        # concern at this level; the µ-ISA benchmarks use the richer
        # PollingInstrumenter stub).
        b.emit(isa.movi(POLL_SCRATCH, 0))
        b.emit(isa.store(POLL_SCRATCH, POLL_FLAG_REG, 0))
        b.label(skip)

    def _lower_loop(self, node: Loop) -> None:
        b = self.builder
        head = self._fresh("loop")
        b.emit(isa.movi(node.counter_reg, 0))
        if node.count == 0:
            return
        b.label(head)
        self._lower_nodes(node.body)
        b.emit(isa.addi(node.counter_reg, node.counter_reg, 1))
        # Immediate-compare back-edge: nested loops stay independent.
        branch = isa.blti(node.counter_reg, node.count, head)
        if node.safepoint_backedge:
            branch = branch.with_safepoint()
        b.emit(branch)


def lower_module(module: Module, name: str = "") -> Program:
    """Lower ``module`` to an executable µ-ISA program (with the default
    interrupt handler appended)."""
    builder = ProgramBuilder(name or (module.entry or "module"))
    _Lowerer(module, builder).lower()
    builder.emit_default_handler()
    return builder.build()
