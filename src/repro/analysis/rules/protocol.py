"""P-rules: engine-contract and simulation-purity protocol conformance.

Where the D-rules catch nondeterministic *inputs*, these catch classes that
break the contracts the engines rely on:

- PRO101: every ``DeliveryStrategy`` subclass must take an explicit position
  on the cycle-skipping quiescence hooks (``always_poll`` and
  ``next_activity_cycle``).  The base-class defaults are safe but silently
  disable skipping; worse, a subclass that sets ``always_poll = False``
  without implementing ``next_activity_cycle`` documents an opt-in it never
  made.  The fast engine's whole correctness argument (PR 2) hangs on these
  two hooks agreeing.
- PRO102: event callbacks (``on_*`` / ``*_callback`` functions) must not
  mutate module-global state — ``global`` rebinding or writes through
  ALL_CAPS module constants make replay order-dependent.
- PRO103: hot-path classes named in :data:`SLOTS_MANIFEST` must declare
  ``__slots__`` (directly or via ``@dataclass(slots=True)``).  Beyond the
  memory/speed win, slots make accidental state — the attribute a fault
  injector or test scribbles onto a live core — an immediate ``AttributeError``
  instead of silent divergence between engines.
- PRO104: modules named in :data:`PURE_MODULES` (macro-op recording/replay
  and hot-block detection) must be simulation-pure: no wall-clock/entropy
  imports, no ambient process-state reads (``os.environ``), no ``global``
  rebinding, and no function-body reads of mutable module-level variables.
  The macro tier's replay results land in the equality contract; any input
  that varies between two runs of the same workload would break
  bit-identical replay.  (Writes *to* ALL_CAPS telemetry singletons are
  not flagged — counters are write-only engine telemetry by design.)
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleSource, Rule, register
from repro.analysis.statemodel import derive_slots_manifest

#: Hot-path classes that must declare ``__slots__``, keyed by module.
#: Derived from :data:`repro.analysis.statemodel.STATE_CLASSES` — the single
#: registry shared with the STA2xx state rules, so PRO103 and STA2xx can
#: never disagree about which classes are hot-path.  Growing the model?  Add
#: per-event/per-uop/per-packet classes to ``STATE_CLASSES``.
SLOTS_MANIFEST: Dict[str, Tuple[str, ...]] = derive_slots_manifest()

#: Fixture/ad-hoc files can demand slots for local classes with a
#: ``slots-manifest[ClassA,ClassB]`` pragma (written after the usual
#: ``detlint:`` comment marker) anywhere in the file.
_MANIFEST_PRAGMA_RE = re.compile(r"#\s*detlint:\s*slots-manifest\[([A-Za-z0-9_,\s]+)\]")

_CALLBACK_NAME_RE = re.compile(r"^on_\w+$|^\w+_callback$|^\w+_cb$")

#: Modules that must be simulation-pure (PRO104): the macro-op trace tier's
#: recording/replay, hot-block detection, the multi-core batch stepper, and
#: the scenario -> system compiler.  Their outputs land in the engine
#: equality contract (the compiler additionally in the fuzz replay
#: contract: compiling the same scenario twice must build byte-identical
#: systems), so any nondeterministic or ambient input here would break
#: bit-identical replay.
PURE_MODULES: Tuple[str, ...] = (
    "repro.cpu.batchstep",
    "repro.cpu.hotness",
    "repro.cpu.macroop",
    "repro.scenario.compile",
)

#: Fixture/ad-hoc files opt into PRO104 with a ``pure-module`` pragma.
_PURE_PRAGMA_RE = re.compile(r"#\s*detlint:\s*pure-module\b")

#: Wall-clock and entropy sources a pure module may never import.
_IMPURE_IMPORTS = frozenset(("time", "datetime", "random", "secrets", "uuid"))

#: ``os`` members that read ambient process state.
_OS_AMBIENT = frozenset(("environ", "environb", "getenv", "getenvb", "urandom"))


def _class_defs(tree: ast.AST) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def _base_names(cls: ast.ClassDef) -> List[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _assigned_names(cls: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.value is not None:
                names.add(stmt.target.id)
    return names


def _method_names(cls: ast.ClassDef) -> Set[str]:
    return {
        stmt.name
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _has_slots(cls: ast.ClassDef) -> bool:
    if "__slots__" in _assigned_names(cls):
        return True
    # AnnAssign without value still declares the slot when paired with
    # dataclass(slots=True); the decorator check below covers that path.
    for decorator in cls.decorator_list:
        if isinstance(decorator, ast.Call):
            func = decorator.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
            if name == "dataclass":
                for kw in decorator.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
    return False


@register
class DeliveryQuiescenceRule(Rule):
    """PRO101 — DeliveryStrategy subclasses and the cycle-skip contract."""

    rule_id = "PRO101"
    description = (
        "DeliveryStrategy subclass does not take an explicit position on the "
        "quiescence hooks (always_poll + next_activity_cycle)"
    )
    hint = (
        "declare `always_poll` in the class body and override "
        "`next_activity_cycle` (return None to act only on pending "
        "interrupts, or a cycle bound); the cycle-skipping engine trusts "
        "these two hooks to agree"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for cls in _class_defs(module.tree):
            bases = _base_names(cls)
            if not any(base.endswith("DeliveryStrategy") for base in bases):
                continue
            declares_poll = "always_poll" in _assigned_names(cls)
            implements_next = "next_activity_cycle" in _method_names(cls)
            if declares_poll and implements_next:
                continue
            missing = []
            if not declares_poll:
                missing.append("an explicit `always_poll` declaration")
            if not implements_next:
                missing.append("a `next_activity_cycle` override")
            yield self.finding(
                module,
                cls,
                f"strategy {cls.name} is missing {' and '.join(missing)}",
            )


@register
class CallbackPurityRule(Rule):
    """PRO102 — event callbacks must not mutate module-global state."""

    rule_id = "PRO102"
    description = (
        "event callback (on_* / *_callback) mutates module-global state "
        "(`global` rebinding or writes through an ALL_CAPS module constant)"
    )
    hint = (
        "carry state on the owning object (self) or thread it through the "
        "callback's arguments; global mutation makes replay order-dependent"
    )

    def _module_constants(self, tree: ast.AST) -> Set[str]:
        constants: Set[str] = set()
        for stmt in getattr(tree, "body", []):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id.isupper():
                        constants.add(target.id)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    name = alias.asname or alias.name.split(".")[0]
                    if name.isupper():
                        constants.add(name)
        return constants

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        constants = self._module_constants(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _CALLBACK_NAME_RE.match(node.name):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.Global):
                    yield self.finding(
                        module,
                        inner,
                        f"callback {node.name} rebinds global(s) "
                        f"{', '.join(inner.names)}",
                    )
                elif isinstance(inner, (ast.Assign, ast.AugAssign)):
                    targets = (
                        inner.targets if isinstance(inner, ast.Assign) else [inner.target]
                    )
                    for target in targets:
                        root = target
                        while isinstance(root, (ast.Attribute, ast.Subscript)):
                            root = root.value
                        if (
                            isinstance(root, ast.Name)
                            and root.id in constants
                            and root is not target
                        ):
                            yield self.finding(
                                module,
                                inner,
                                f"callback {node.name} writes through module "
                                f"constant {root.id}",
                            )


@register
class SlotsManifestRule(Rule):
    """PRO103 — manifest-listed hot-path classes must declare __slots__."""

    rule_id = "PRO103"
    description = (
        "hot-path class named in the slots manifest does not declare "
        "__slots__ (directly or via @dataclass(slots=True))"
    )
    hint = (
        "add `__slots__ = (...)` listing every instance attribute, or pass "
        "slots=True to @dataclass; update SLOTS_MANIFEST if the class moved"
    )

    def _required_classes(self, module: ModuleSource) -> Set[str]:
        required = set(SLOTS_MANIFEST.get(module.module, ()))
        for match in _MANIFEST_PRAGMA_RE.finditer(module.text):
            required.update(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
        return required

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        required = self._required_classes(module)
        if not required:
            return
        found: Set[str] = set()
        for cls in _class_defs(module.tree):
            if cls.name not in required:
                continue
            found.add(cls.name)
            if not _has_slots(cls):
                yield self.finding(
                    module,
                    cls,
                    f"hot-path class {cls.name} has no __slots__ declaration",
                )
        for name in sorted(required - found):
            yield self.finding(
                module,
                module.tree,
                f"manifest class {name} not found in {module.module} "
                "(stale SLOTS_MANIFEST entry?)",
                hint="update SLOTS_MANIFEST in repro.analysis.rules.protocol",
            )


def _function_locals(fn: ast.AST) -> Set[str]:
    """Names bound inside ``fn``: parameters, assignments, comprehension and
    exception targets, nested defs.  Used to tell a local shadow apart from
    a genuine read of a module-level variable."""
    names: Set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            names.add(arg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not fn:
                names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
    return names


@register
class SimulationPurityRule(Rule):
    """PRO104 — macro recording/replay modules must be simulation-pure."""

    rule_id = "PRO104"
    description = (
        "simulation-pure module (macro-op recording/replay) reads the wall "
        "clock, entropy, ambient process state, or a mutable module global"
    )
    hint = (
        "pure modules may only read the core state they are handed: drop "
        "time/random/os.environ, and carry caches on the controller object "
        "instead of module-level variables (ALL_CAPS constants are fine)"
    )

    def _applies(self, module: ModuleSource) -> bool:
        return module.module in PURE_MODULES or bool(
            _PURE_PRAGMA_RE.search(module.text)
        )

    def _mutable_globals(self, tree: ast.AST) -> Set[str]:
        """Module-level assigned names that are not ALL_CAPS constants."""
        names: Set[str] = set()
        for stmt in getattr(tree, "body", []):
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and not target.id.isupper()
                    and not target.id.startswith("__")
                ):
                    names.add(target.id)
        return names

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not self._applies(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _IMPURE_IMPORTS:
                        yield self.finding(
                            module,
                            node,
                            f"pure module imports wall-clock/entropy source "
                            f"{alias.name}",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _IMPURE_IMPORTS:
                    yield self.finding(
                        module,
                        node,
                        f"pure module imports from wall-clock/entropy source "
                        f"{node.module}",
                    )
            elif isinstance(node, ast.Global):
                yield self.finding(
                    module,
                    node,
                    f"pure module rebinds module global(s) "
                    f"{', '.join(node.names)}",
                )
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "os"
                and node.attr in _OS_AMBIENT
            ):
                yield self.finding(
                    module,
                    node,
                    f"pure module reads ambient process state os.{node.attr}",
                )
        mutable = self._mutable_globals(module.tree)
        if not mutable:
            return
        seen: Set[Tuple[int, int, str]] = set()
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local = _function_locals(fn)
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in mutable
                    and node.id not in local
                ):
                    key = (node.lineno, node.col_offset, node.id)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.finding(
                        module,
                        node,
                        f"pure function {fn.name} reads mutable module "
                        f"global {node.id}",
                    )
