"""D-rules: nondeterministic *inputs* leaking into simulation code.

The repo's central promise — naive and fast engines trace-timestamp
identical, fault runs byte-replayable from a seeded plan — only holds while
simulated results are pure functions of (config, seed).  These rules catch
the classic leaks at the AST level: wall-clock reads, draws from process-
global RNG state, iteration order of unordered containers, environment
reads outside the layers that own configuration, and order-sensitive
accumulation driven by unordered iteration.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleSource, Rule, register

#: Layers allowed to read wall clocks (telemetry/timeout duty) and the
#: process environment (run-shape knobs: jobs, cache dir, engine choice).
#: ``repro.obs`` is on the wall-clock list for its host-side perf gate
#: (``repro.obs.regress``); its trace/metrics core still uses simulated
#: cycles only, which the obs fixture pair in the test suite pins down.
ENGINE_LAYERS = ("repro.perf", "repro.obs")
CONFIG_LAYERS = ("repro.perf", "repro.common.counters")

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: ``numpy.random`` attributes that construct *seedable* generator objects
#: (fine as long as a seed is passed — checked separately for default_rng).
_NUMPY_SEEDABLE = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937"}

#: The only ``repro.*`` modules that may construct RNGs at all — even
#: seeded ones.  Everything else must draw through these (derived streams
#: via :func:`repro.common.rng.derive_seed`, plan/scenario generation via
#: the seeded generator modules), so every random decision in a simulated
#: result is reachable from one named seed.  Files outside a ``repro``
#: package root (fixtures, scripts) carry a bare-stem module name and are
#: exempt from this containment check.
SEEDED_RNG_MODULES = (
    "repro.common.rng",
    "repro.faults.plan",
    "repro.net.lpm",
    "repro.apps.rocksdb",
    "repro.scenario.generate",
)


def build_alias_map(tree: ast.AST) -> Dict[str, str]:
    """Map local names to canonical dotted module paths.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def resolve_dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of an attribute chain, or None.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng`` when
    ``np`` aliases ``numpy``.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id, node.id)
    parts.append(base)
    return ".".join(reversed(parts))


def _is_unordered_expr(node: ast.AST) -> bool:
    """Is ``node`` statically an unordered set expression?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_unordered_expr(node.left) or _is_unordered_expr(node.right)
    return False


def _iteration_sites(tree: ast.AST) -> Iterator[ast.AST]:
    """Yield the iterable expression of every for-loop and comprehension."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                yield generator.iter


@register
class WallClockRule(Rule):
    """DET001 — wall-clock reads in simulation code."""

    rule_id = "DET001"
    description = (
        "wall-clock read (time.time / perf_counter / datetime.now) outside "
        "the perf/telemetry layer"
    )
    hint = (
        "simulated time must come from the simulator clock (Simulator.now / "
        "Core.cycle); wall-clock telemetry belongs in repro.perf"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.in_layer(*ENGINE_LAYERS):
            return
        aliases = build_alias_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_dotted(node.func, aliases)
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(module, node, f"call to wall clock {name}()")


@register
class UnseededRandomRule(Rule):
    """DET002 — draws from process-global or unseeded RNG state."""

    rule_id = "DET002"
    description = (
        "bare random.* / numpy.random.* draw, an RNG constructed without a "
        "seed, or a seeded RNG constructed outside the generator modules"
    )
    hint = (
        "draw from a named, seeded stream (repro.common.rng.RngStreams) or "
        "construct random.Random(seed) / numpy.random.default_rng(seed) "
        "inside a SEEDED_RNG_MODULES generator module"
    )

    def _containment_finding(
        self, module: ModuleSource, node: ast.Call, what: str
    ) -> Optional[Finding]:
        """Flag a *seeded* constructor in a repro module off the allowlist."""
        if not module.in_layer("repro"):
            return None  # bare-stem fixtures/scripts are exempt
        if module.in_layer(*SEEDED_RNG_MODULES):
            return None
        return self.finding(
            module,
            node,
            f"seeded {what} constructed outside the seeded-RNG generator "
            f"modules ({', '.join(SEEDED_RNG_MODULES)})",
        )

    def _call_is_unseeded(self, node: ast.Call) -> bool:
        if node.args:
            first = node.args[0]
            return isinstance(first, ast.Constant) and first.value is None
        for kw in node.keywords:
            if kw.arg is None or kw.arg in ("seed", "entropy", "x"):
                return isinstance(kw.value, ast.Constant) and kw.value.value is None
        return True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        aliases = build_alias_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_dotted(node.func, aliases)
            if name is None:
                continue
            if name.startswith("random."):
                tail = name[len("random.") :]
                if tail == "Random":
                    if self._call_is_unseeded(node):
                        yield self.finding(
                            module, node, "random.Random() constructed without a seed"
                        )
                    else:
                        contained = self._containment_finding(
                            module, node, "random.Random"
                        )
                        if contained is not None:
                            yield contained
                elif tail != "SystemRandom":
                    yield self.finding(
                        module,
                        node,
                        f"{name}() draws from the process-global Mersenne Twister",
                    )
            elif name.startswith("numpy.random."):
                tail = name[len("numpy.random.") :]
                if tail == "default_rng":
                    if self._call_is_unseeded(node):
                        yield self.finding(
                            module, node, "numpy.random.default_rng() without a seed"
                        )
                    else:
                        contained = self._containment_finding(
                            module, node, "numpy.random.default_rng"
                        )
                        if contained is not None:
                            yield contained
                elif tail not in _NUMPY_SEEDABLE:
                    yield self.finding(
                        module,
                        node,
                        f"{name}() draws from numpy's process-global RNG state",
                    )


@register
class UnorderedIterationRule(Rule):
    """DET003 — iterating an unordered set expression."""

    rule_id = "DET003"
    description = (
        "iteration over a set/frozenset expression (order varies with hash "
        "seeding and insertion history)"
    )
    hint = "wrap the iterable in sorted(...) to fix the visit order"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        flagged: Set[int] = set()
        for site in _iteration_sites(module.tree):
            if _is_unordered_expr(site) and id(site) not in flagged:
                flagged.add(id(site))
                yield self.finding(module, site, "iteration over an unordered set expression")
        # list()/tuple() materialize iteration order just the same.
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and node.args
                and _is_unordered_expr(node.args[0])
                and id(node.args[0]) not in flagged
            ):
                flagged.add(id(node.args[0]))
                yield self.finding(
                    module,
                    node,
                    f"{node.func.id}() materializes an unordered set expression",
                )


@register
class EnvironReadRule(Rule):
    """DET004 — process-environment access outside the config/engine layers."""

    rule_id = "DET004"
    description = (
        "os.environ / os.getenv access outside the config/engine layers "
        "(repro.perf, repro.common.counters)"
    )
    hint = (
        "thread the knob through an explicit parameter or a config object; "
        "only the engine/config layers may consult the environment"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.in_layer(*CONFIG_LAYERS):
            return
        aliases = build_alias_map(module.tree)
        seen_lines: Set[int] = set()
        for node in ast.walk(module.tree):
            name = None
            if isinstance(node, ast.Attribute):
                name = resolve_dotted(node, aliases)
            elif isinstance(node, ast.Name):
                name = aliases.get(node.id)
            if name == "os.environ" or (
                isinstance(node, ast.Call)
                and resolve_dotted(node.func, aliases)
                in ("os.getenv", "os.putenv", "os.unsetenv")
            ):
                lineno = getattr(node, "lineno", 1)
                if lineno not in seen_lines:
                    seen_lines.add(lineno)
                    yield self.finding(module, node, "process-environment access")


@register
class UnstableAccumulationRule(Rule):
    """DET005 — order-sensitive accumulation over unordered iteration."""

    rule_id = "DET005"
    description = (
        "accumulation (sum / '+=' into a container slot) driven by an "
        "unordered set expression; float addition is not associative"
    )
    hint = "sort the iterable first (sorted(...)) or use math.fsum on a sorted sequence"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
                and _is_unordered_expr(node.args[0])
            ):
                yield self.finding(module, node, "sum() over an unordered set expression")
            elif isinstance(node, (ast.For, ast.AsyncFor)) and _is_unordered_expr(node.iter):
                for inner in ast.walk(node):
                    if (
                        isinstance(inner, ast.AugAssign)
                        and isinstance(inner.op, ast.Add)
                        and isinstance(inner.target, ast.Subscript)
                    ):
                        yield self.finding(
                            module,
                            inner,
                            "'+=' into a container slot inside a loop over an "
                            "unordered set expression",
                        )
