"""S-rules (STA2xx): state-surface coverage and write ownership.

PR 8's differential fuzzer found the canonical fast-tier bug *dynamically*:
a mutable ``Core`` field (``ready_heap`` staleness through ``note_skipped``)
that the batch tier's skip proof did not account for.  These rules move that
bug class to lint time, using the whole-program state model extracted by
:mod:`repro.analysis.statemodel`:

- STA201: every mutable ``Core`` field must be referenced by the macro-op
  tier's snapshot/compare module (``repro.cpu.macroop``) or listed in
  :data:`MACRO_SNAPSHOT_EXEMPT` with the replay invariant that makes it
  safe.  Adding a field to ``Core`` without teaching the sigma snapshot
  becomes a lint failure, not a fuzzer find.
- STA202: the batch tier's activity surface (``repro.cpu.batchstep`` plus
  ``Core.next_activity_cycle``/``Core.note_skipped``) must reference every
  mutable ``Core`` field or exempt it in :data:`BATCH_ACTIVITY_EXEMPT`;
  additionally every ``BatchScheduler`` lane-mirror slot must be refreshed
  inside ``lane_snapshot`` or exempted in :data:`LANE_MIRROR_EXEMPT`.
- STA203: dataclasses carrying ``to_json``/``from_json`` codecs (the
  Scenario DSL and FaultPlan) must mention every field name in *both*
  directions — a field added to the dataclass but not the codec would
  silently drop state on round-trip.
- STA204: read-only modules (``repro.obs``, ``repro.faults.invariants``)
  must not store to engine-state fields owned by other packages; the
  InvariantChecker's "read-only" promise becomes machine-checked.  Declared
  interception points (:data:`WRITE_GRANTS`) are the only exceptions.
- STA205: cross-package attribute writes to modeled engine state must come
  from the owning package or a declared grant — only ``repro.cpu`` writes
  ``Core`` microarchitectural fields; fault injection mutates only through
  its declared interception points.

Fixture pragmas (all ``# detlint:``-prefixed, like the PRO-family pragmas)
let single-file fixtures exercise each rule without shipping a fake engine:

- ``state-class[Name owner=pkg core hot]`` — declare a modeled class
  (parsed by :mod:`repro.analysis.statemodel`).
- ``snapshot-fn[f,g]`` — STA201: these functions are the snapshot surface
  for the file's ``core``-flagged classes.
- ``activity-fn[f,g]`` — STA202: these functions are the activity surface.
- ``lane-class[Name refresh=fn]`` — STA202: check ``Name``'s mirror slots
  against stores in method ``fn``.
- ``exempt[Class.field] -- reason`` — exempt one field from the coverage
  rules; the reason is mandatory.
- ``write-grant[Class.field pkg]`` — STA204/205: declare an interception
  point granting ``pkg`` write access (fixture-local).
- ``read-only-module`` — STA204: apply the read-only contract to the file.

Write-resolution semantics (shared with the state model): a store resolves
strictly when the receiver name hints a modeled class, else to every class
declaring the field; ambiguous writes pass if *any* candidate permits them,
and fields of the writing module's own non-modeled classes are skipped —
ambiguity can relax a finding but never invent one (zero false positives on
the clean tree is the contract).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleSource, ProgramModel, ProgramRule, Rule, register
from repro.analysis.statemodel import (
    ClassModel,
    StateModel,
    local_class_fields,
    nonmodel_class_fields,
    stored_attr_names,
)

# ---------------------------------------------------------------------------
# Declared policy: who may write what, and which fields the fast tiers may
# ignore.  Every entry carries the invariant that justifies it — these are
# audit artifacts, not an escape hatch (satellite rule: never baseline a
# true positive silently).

#: Modules that must be read-only over engine state (prefix match).
READ_ONLY_MODULES: Tuple[str, ...] = ("repro.obs", "repro.faults.invariants")

#: Dataclass-codec modules STA203 audits.
JSON_CODEC_MODULES: Tuple[str, ...] = (
    "repro.scenario.dsl",
    "repro.faults.plan",
    "repro.cluster.topology",
    "repro.cluster.shard",
    "repro.cluster.aggregate",
    "repro.cluster.report",
)

#: Declared cross-package write grants: ``"Class.field" -> (module prefixes)``.
#: These are the *interception points* — the complete, reviewed list of
#: places allowed to mutate another package's engine state.
WRITE_GRANTS: Dict[str, Tuple[str, ...]] = {
    # §4.4 safepoint mode is an architectural MSR bit: the xui feature API
    # is its canonical writer, and the scenario compiler / fault harness set
    # it at configuration time (before cycle 0), never mid-simulation.
    "UserInterruptFile.safepoint_mode": (
        "repro.xui",
        "repro.scenario.compile",
        "repro.faults.harness",
    ),
    # §4.3 the KB timer is kernel-managed: enable/disable and vector
    # assignment are syscall surface (kernel writes), arming is done by the
    # user-level instruction inside repro.cpu (owner).
    "KBTimerState.enabled": ("repro.kernel",),
    "KBTimerState.vector": ("repro.kernel",),
    # Declared fault-injection interception points: the injector may drift a
    # timer deadline and install an APIC-level interceptor — and nothing
    # else.  Any new injector mutation must be granted here to pass lint.
    "KBTimerState.deadline": ("repro.faults.injector",),
    "LocalApic.fault_interceptor": ("repro.faults.injector",),
    # The InvariantChecker installs its probe hook on the core; the probe
    # itself only reads (that is exactly what STA204 enforces elsewhere).
    "Core.invariant_probe": ("repro.faults.invariants",),
}

#: Shared justification for the run-loop's memoized next-activity cache.
#: These four fields summarize the primary activity sources (heaps, timers,
#: stalls); a stale summary can only *shorten* a skip (forcing a re-scan),
#: never extend one, so neither tier needs to version them.
_NA_CACHE_REASON = (
    "run-loop memoization of next_activity_cycle; re-derived from the "
    "primary sources (heaps/timers/stalls), staleness can only shorten a skip"
)

#: Shared justification for configuration-time installs: written before
#: cycle 0 (system wiring / kernel registration), constant during simulation.
_CONFIG_TIME_REASON = "installed at configuration time, constant during simulation"

#: STA201 — mutable ``Core`` fields the macro-op sigma snapshot may ignore,
#: each with the replay invariant that makes ignoring it safe.  This is the
#: complete audited list: every other mutable Core field must be referenced
#: by ``repro.cpu.macroop`` or lint fails.
MACRO_SNAPSHOT_EXEMPT: Dict[str, str] = {
    "_idle_anchor": _NA_CACHE_REASON,
    "_na_backoff": _NA_CACHE_REASON,
    "_na_streak": _NA_CACHE_REASON,
    "_next_activity": _NA_CACHE_REASON,
    "_macro": _CONFIG_TIME_REASON + " (the MacroController handle itself)",
    "invariant_probe": _CONFIG_TIME_REASON + " (declared fault-hook grant)",
    "uitt": _CONFIG_TIME_REASON + " (connect_uipi / kernel UITT registration)",
    "engine_cycles_skipped": (
        "engine-tier skip accounting that intentionally differs between "
        "naive/fast/macro tiers; excluded from the equality contract"
    ),
    "macro_pc": (
        "sigma arm/match requires empty inject/macro queues (macroop guards "
        "read macro_pos/macro_queue), so the macro-sequence PC is dead state "
        "at every snapshot boundary"
    ),
}

#: Shared justification for data-path fields only the lane's own step()
#: (or its interrupt-delivery path, which runs inside step()) mutates: a
#: skipped lane executes nothing, and the skip proof consults only timing
#: sources (heaps, timers, stalls), never data-path values.
_STEP_ONLY_REASON = (
    "mutated only while the lane itself steps (pipeline/delivery path); a "
    "skipped lane executes nothing and the horizon proof reads only timing "
    "sources"
)

#: STA202 — mutable ``Core`` fields the batch-tier activity surface
#: (batchstep + next_activity_cycle + note_skipped) may ignore.  Complete
#: audited list, same contract as :data:`MACRO_SNAPSHOT_EXEMPT`.
BATCH_ACTIVITY_EXEMPT: Dict[str, str] = {
    "arch_regs": _STEP_ONLY_REASON,
    "reg_producer": _STEP_ONLY_REASON,
    "iq_count": _STEP_ONLY_REASON,
    "_seq": _STEP_ONLY_REASON,
    "_current_fetch_line": _STEP_ONLY_REASON,
    "_last_chain_uop": _STEP_ONLY_REASON,
    "interrupt_path": _STEP_ONLY_REASON,
    "current_interrupt": _STEP_ONLY_REASON,
    "macro_pc": _STEP_ONLY_REASON,
    "_macro_rec": _STEP_ONLY_REASON + " (macro-tier recorder bookkeeping)",
    "_trace_resume_pending": _STEP_ONLY_REASON,
    "last_program_commit_cycle": _STEP_ONLY_REASON,
    "_notif_pir": (
        "written during interrupt recognition, which only happens on a "
        "stepped cycle; a pending notification already forces the lane out "
        "of the batched fast path via _divergent"
    ),
    "_idle_anchor": _NA_CACHE_REASON,
    "_na_backoff": _NA_CACHE_REASON,
    "_na_streak": _NA_CACHE_REASON,
    "_next_activity": _NA_CACHE_REASON,
    "invariant_probe": _CONFIG_TIME_REASON + " (declared fault-hook grant)",
    "uitt": _CONFIG_TIME_REASON + " (connect_uipi / kernel UITT registration)",
}

#: STA202 — ``BatchScheduler`` slots that are not per-lane mirror caches
#: refreshed by ``lane_snapshot``.  Everything else in the class is a
#: SoA mirror of Core state and must be written there.
LANE_MIRROR_EXEMPT: Dict[str, str] = {
    "system": "configuration handle, fixed in __init__",
    "cores": "configuration handle, fixed in __init__",
    "n": "configuration constant, fixed in __init__",
    "idle_min": "configuration constant, fixed in __init__",
    "na": (
        "authoritative per-lane horizon, maintained incrementally by "
        "run_batched at every step/skip — the mirror IS the source of truth, "
        "not a cache to refresh"
    ),
    "anchor": (
        "authoritative per-lane anchor cycle, maintained incrementally by "
        "run_batched alongside `na`"
    ),
    "run_list": "transient scratch rebuilt by run_batched on every pass",
    "in_run": "transient scratch rebuilt by run_batched on every pass",
}

# ---------------------------------------------------------------------------
# Pragmas

_SNAPSHOT_FN_RE = re.compile(r"#\s*detlint:\s*snapshot-fn\[([A-Za-z0-9_,\s]+)\]")
_ACTIVITY_FN_RE = re.compile(r"#\s*detlint:\s*activity-fn\[([A-Za-z0-9_,\s]+)\]")
_LANE_CLASS_RE = re.compile(r"#\s*detlint:\s*lane-class\[(\w+)\s+refresh=(\w+)\]")
_EXEMPT_RE = re.compile(r"#\s*detlint:\s*exempt\[(\w+)\.(\w+)\]\s*--\s*(\S.*)")
_GRANT_RE = re.compile(r"#\s*detlint:\s*write-grant\[(\w+)\.(\w+)\s+([\w.]+)\]")
_JSON_CODEC_RE = re.compile(r"#\s*detlint:\s*json-codec\b")
_READ_ONLY_RE = re.compile(r"#\s*detlint:\s*read-only-module\b")


def _fn_list(regex: re.Pattern, text: str) -> List[str]:
    names: List[str] = []
    for match in regex.finditer(text):
        names.extend(part.strip() for part in match.group(1).split(",") if part.strip())
    return names


def _pragma_exemptions(text: str) -> Dict[Tuple[str, str], str]:
    return {
        (match.group(1), match.group(2)): match.group(3).strip()
        for match in _EXEMPT_RE.finditer(text)
    }


def _pragma_grants(text: str) -> Dict[str, Tuple[str, ...]]:
    grants: Dict[str, Tuple[str, ...]] = {}
    for match in _GRANT_RE.finditer(text):
        key = f"{match.group(1)}.{match.group(2)}"
        grants[key] = grants.get(key, ()) + (match.group(3),)
    return grants


# ---------------------------------------------------------------------------
# AST helpers

class _Loc:
    """Minimal node stand-in carrying a source location for findings."""

    __slots__ = ("lineno", "col_offset")

    def __init__(self, lineno: int, col_offset: int = 0) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


def _attr_mentions(tree: ast.AST) -> Set[str]:
    """Every attribute name referenced anywhere in ``tree`` (any context)."""
    return {
        node.attr for node in ast.walk(tree) if isinstance(node, ast.Attribute)
    }


def _functions_named(tree: ast.AST, names: Set[str]) -> List[ast.AST]:
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name in names
    ]


def _class_def(tree: ast.AST, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _in_pkg(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


def _is_read_only(module: ModuleSource) -> bool:
    return any(_in_pkg(module.module, prefix) for prefix in READ_ONLY_MODULES) or bool(
        _READ_ONLY_RE.search(module.text)
    )


def _write_allowed(
    module: str,
    cls: ClassModel,
    attr: str,
    extra_grants: Dict[str, Tuple[str, ...]],
) -> bool:
    # No same-module free pass: ownership is the declared owner package.
    # Registered classes live inside their owner prefix, so their defining
    # module passes via _in_pkg; pragma classes honor the owner= token.
    if _in_pkg(module, cls.owner):
        return True
    key = f"{cls.name}.{attr}"
    for prefix in WRITE_GRANTS.get(key, ()) + extra_grants.get(key, ()):
        if _in_pkg(module, prefix):
            return True
    return False


def _local_nonmodel_fields(module: ModuleSource, model: StateModel) -> Set[str]:
    """Fields of classes defined in ``module`` that are *not* in the state
    model — writes to these are the module's own business."""
    modeled = {cls.name for cls in model.classes if cls.module == module.module}
    return nonmodel_class_fields(module.tree, modeled)


# ---------------------------------------------------------------------------
# STA201 / STA202 — snapshot & activity coverage


class _CoverageRule(ProgramRule):
    """Shared machinery: audit mutable core-state fields against a reader
    surface, honouring an exemption manifest."""

    def _audit(
        self,
        program: ProgramModel,
        cls: ClassModel,
        anchor: ModuleSource,
        readers: Set[str],
        exempt: Dict[str, str],
        surface: str,
        manifest: str,
    ) -> Iterator[Finding]:
        field_names = {info.name for info in cls.fields}
        for info in cls.mutable_fields():
            if info.name in readers:
                continue
            reason = exempt.get(info.name)
            if reason:
                continue
            yield self.program_finding(
                anchor,
                None,
                f"mutable {cls.name} field `{info.name}` is not referenced by "
                f"{surface} and carries no exemption",
                hint=(
                    f"teach {surface} about the field, or add it to "
                    f"{manifest} with the invariant that makes skipping it "
                    "safe for replay"
                ),
            )
        for name in sorted(exempt):
            if name not in field_names:
                yield self.program_finding(
                    anchor,
                    None,
                    f"stale exemption: `{name}` is not a field of {cls.name}",
                    hint=f"delete the entry from {manifest}",
                )


@register
class MacroSnapshotCoverageRule(_CoverageRule):
    """STA201 — the sigma snapshot must know every mutable Core field."""

    rule_id = "STA201"
    description = (
        "mutable core-state field not covered by the macro-op snapshot "
        "module and not exempted as replay-invariant"
    )
    hint = (
        "extend _snapshot_core/_sigma_match, or exempt the field in "
        "MACRO_SNAPSHOT_EXEMPT with the invariant that keeps replay exact"
    )

    _READER_MODULE = "repro.cpu.macroop"

    def check_program(self, program: ProgramModel) -> Iterator[Finding]:
        model = program.state_model
        for cls in model.core_classes():
            source = program.by_module.get(cls.module)
            if source is None:
                continue
            if cls.module == "repro.cpu.core":
                reader = program.by_module.get(self._READER_MODULE)
                if reader is None:
                    continue  # partial scan: no snapshot contract in view
                readers = _attr_mentions(reader.tree)
                exempt = dict(MACRO_SNAPSHOT_EXEMPT)
                anchor = reader
            else:
                fn_names = set(_fn_list(_SNAPSHOT_FN_RE, source.text))
                if not fn_names:
                    continue  # fixture declared no snapshot surface
                readers = set()
                for fn in _functions_named(source.tree, fn_names):
                    readers |= _attr_mentions(fn)
                exempt = {
                    field: reason
                    for (name, field), reason in _pragma_exemptions(source.text).items()
                    if name == cls.name
                }
                anchor = source
            yield from self._audit(
                program,
                cls,
                anchor,
                readers,
                exempt,
                surface=f"the snapshot surface of {anchor.module}",
                manifest="MACRO_SNAPSHOT_EXEMPT",
            )


@register
class BatchActivityCoverageRule(_CoverageRule):
    """STA202 — the batch tier's skip proof must know every mutable Core
    field, and every lane-mirror slot must be refreshed."""

    rule_id = "STA202"
    description = (
        "mutable core-state field invisible to the batch-tier activity "
        "surface, or a lane-mirror slot that lane_snapshot never refreshes"
    )
    hint = (
        "reference the field from the activity surface (batchstep, "
        "next_activity_cycle, note_skipped), refresh the mirror in "
        "lane_snapshot, or exempt it with the invariant that keeps the "
        "skip proof sound"
    )

    _READER_MODULE = "repro.cpu.batchstep"
    _ACTIVITY_FNS = {"next_activity_cycle", "note_skipped"}

    def check_program(self, program: ProgramModel) -> Iterator[Finding]:
        model = program.state_model
        for cls in model.core_classes():
            source = program.by_module.get(cls.module)
            if source is None:
                continue
            if cls.module == "repro.cpu.core":
                reader = program.by_module.get(self._READER_MODULE)
                if reader is None:
                    continue
                readers = _attr_mentions(reader.tree)
                for fn in _functions_named(source.tree, self._ACTIVITY_FNS):
                    readers |= _attr_mentions(fn)
                exempt = dict(BATCH_ACTIVITY_EXEMPT)
                anchor = reader
            else:
                fn_names = set(_fn_list(_ACTIVITY_FN_RE, source.text))
                if not fn_names:
                    continue
                readers = set()
                for fn in _functions_named(source.tree, fn_names):
                    readers |= _attr_mentions(fn)
                exempt = {
                    field: reason
                    for (name, field), reason in _pragma_exemptions(source.text).items()
                    if name == cls.name
                }
                anchor = source
            yield from self._audit(
                program,
                cls,
                anchor,
                readers,
                exempt,
                surface=f"the batch activity surface of {anchor.module}",
                manifest="BATCH_ACTIVITY_EXEMPT",
            )
        yield from self._check_lane_mirrors(program)

    def _lane_targets(
        self, program: ProgramModel
    ) -> Iterator[Tuple[ModuleSource, str, str, Dict[str, str]]]:
        real = program.by_module.get(self._READER_MODULE)
        if real is not None:
            yield real, "BatchScheduler", "lane_snapshot", dict(LANE_MIRROR_EXEMPT)
        for source in program.sources:
            for match in _LANE_CLASS_RE.finditer(source.text):
                exempt = {
                    field: reason
                    for (name, field), reason in _pragma_exemptions(source.text).items()
                    if name == match.group(1)
                }
                yield source, match.group(1), match.group(2), exempt

    def _check_lane_mirrors(self, program: ProgramModel) -> Iterator[Finding]:
        for source, cls_name, refresh, exempt in self._lane_targets(program):
            cls = _class_def(source.tree, cls_name)
            if cls is None:
                continue
            slots = local_class_fields(cls)
            refresh_fn = next(
                iter(_functions_named(cls, {refresh})), None
            )
            if refresh_fn is None:
                yield self.program_finding(
                    source,
                    cls,
                    f"lane class {cls_name} has no `{refresh}` refresh method",
                )
                continue
            stored = stored_attr_names(refresh_fn)
            field_names = set(slots)
            for slot in sorted(slots):
                if slot in stored:
                    continue
                if slot in exempt and exempt[slot]:
                    continue
                yield self.program_finding(
                    source,
                    refresh_fn,
                    f"lane-mirror slot `{slot}` of {cls_name} is never "
                    f"refreshed in {refresh}() and carries no exemption",
                )
            for name in sorted(exempt):
                if name not in field_names:
                    yield self.program_finding(
                        source,
                        cls,
                        f"stale exemption: `{name}` is not a slot of {cls_name}",
                        hint="delete the entry from LANE_MIRROR_EXEMPT",
                    )


# ---------------------------------------------------------------------------
# STA203 — JSON codec completeness


@register
class JsonRoundTripRule(Rule):
    """STA203 — to_json/from_json must mention every dataclass field."""

    rule_id = "STA203"
    description = (
        "dataclass codec (to_json/from_json) does not mention every field "
        "in both directions — round-trip would drop state"
    )
    hint = (
        "emit and parse the field by its literal name in both to_json and "
        "from_json (the strict unknown-key check makes renames loud; this "
        "rule makes *omissions* loud too)"
    )

    def _applies(self, module: ModuleSource) -> bool:
        return module.module in JSON_CODEC_MODULES or bool(
            _JSON_CODEC_RE.search(module.text)
        )

    @staticmethod
    def _is_dataclass(cls: ast.ClassDef) -> bool:
        for decorator in cls.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = (
                target.attr
                if isinstance(target, ast.Attribute)
                else getattr(target, "id", "")
            )
            if name == "dataclass":
                return True
        return False

    @staticmethod
    def _string_constants(fn: ast.AST) -> Set[str]:
        return {
            node.value
            for node in ast.walk(fn)
            if isinstance(node, ast.Constant) and isinstance(node.value, str)
        }

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not self._applies(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or not self._is_dataclass(node):
                continue
            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            to_json = methods.get("to_json")
            from_json = methods.get("from_json")
            if to_json is None or from_json is None:
                continue
            fields = [
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and "ClassVar" not in ast.unparse(stmt.annotation)
            ]
            for direction, fn in (("to_json", to_json), ("from_json", from_json)):
                mentioned = self._string_constants(fn) | _attr_mentions(fn)
                for field in fields:
                    if field not in mentioned:
                        yield self.finding(
                            module,
                            fn,
                            f"{node.name}.{direction} never mentions field "
                            f"`{field}` — JSON round-trip would drop it",
                        )


# ---------------------------------------------------------------------------
# STA204 / STA205 — write ownership


class _OwnershipRule(ProgramRule):
    """Shared resolution: map attribute stores to modeled classes and judge
    them against the ownership map + declared grants."""

    def _violations(
        self, program: ProgramModel, module: ModuleSource
    ) -> Iterator[Tuple[int, str, str, Tuple[ClassModel, ...]]]:
        model = program.state_model
        grants = _pragma_grants(module.text)
        local_fields: Optional[Set[str]] = None
        for write in model.writes:
            if write.module != module.module or write.self_direct:
                continue
            candidates = model.classes_with_field(write.attr)
            if not candidates:
                continue
            strict = tuple(
                cls
                for cls in candidates
                if cls.name.lower() == write.receiver
                or _hinted_class(write.receiver) == cls.name
            )
            if strict:
                candidates = strict
            else:
                if local_fields is None:
                    local_fields = _local_nonmodel_fields(module, model)
                if write.attr in local_fields:
                    continue  # plausibly the module's own class; never guess
            if any(
                _write_allowed(module.module, cls, write.attr, grants)
                for cls in candidates
            ):
                continue
            yield write.line, write.attr, write.receiver, candidates


def _hinted_class(receiver: str) -> str:
    from repro.analysis.statemodel import RECEIVER_HINTS

    return RECEIVER_HINTS.get(receiver, "")


@register
class ReadOnlyEngineStateRule(_OwnershipRule):
    """STA204 — obs/invariants are read-only over engine state."""

    rule_id = "STA204"
    description = (
        "read-only module (repro.obs, repro.faults.invariants) stores to an "
        "engine-state field owned by another package"
    )
    hint = (
        "observability and invariant checking must only read engine state; "
        "if this mutation is a deliberate probe hook, declare it in "
        "WRITE_GRANTS so the interception point is reviewed"
    )

    def check_program(self, program: ProgramModel) -> Iterator[Finding]:
        for module in program.sources:
            if not _is_read_only(module):
                continue
            for line, attr, receiver, candidates in self._violations(program, module):
                names = "/".join(sorted(cls.name for cls in candidates))
                yield self.program_finding(
                    module,
                    _Loc(line),
                    f"read-only module writes engine state "
                    f"`{receiver or '<expr>'}.{attr}` ({names})",
                )


@register
class WriteOwnershipRule(_OwnershipRule):
    """STA205 — engine state is written only by its owner or a grant."""

    rule_id = "STA205"
    description = (
        "attribute write to modeled engine state from outside the owning "
        "package without a declared grant/interception point"
    )
    hint = (
        "route the mutation through the owner's API, or — if this is a "
        "genuine architectural surface (syscall, MSR, fault hook) — declare "
        "it in WRITE_GRANTS with the contract that justifies it"
    )

    def check_program(self, program: ProgramModel) -> Iterator[Finding]:
        for module in program.sources:
            if _is_read_only(module):
                continue  # STA204's jurisdiction; avoid double findings
            for line, attr, receiver, candidates in self._violations(program, module):
                owners = ", ".join(
                    sorted({f"{cls.name} (owner {cls.owner})" for cls in candidates})
                )
                yield self.program_finding(
                    module,
                    _Loc(line),
                    f"write to engine state `{receiver or '<expr>'}.{attr}` "
                    f"from {module.module}; field belongs to {owners}",
                )
