"""The detlint rule engine: rule base class, registry, and program model.

A rule is a stateless object with an ``rule_id``, a one-line description,
and a ``check(module)`` generator yielding :class:`Finding` records.  Rules
see one module at a time as a :class:`ModuleSource` — path, dotted module
name (when the file lives under a ``repro`` package root), raw text, split
lines, and the parsed AST.

Whole-program rules subclass :class:`ProgramRule` instead and implement
``check_program(program)``: they see the :class:`ProgramModel` — every
module parsed exactly once, shared across all rule families, plus the
lazily-extracted engine state model (:mod:`repro.analysis.statemodel`).

Adding a rule:

1. subclass :class:`Rule` in ``repro.analysis.rules.determinism`` (D-rules:
   nondeterministic *inputs*) or ``repro.analysis.rules.protocol`` (P-rules:
   simulation-purity and engine-contract violations), or :class:`ProgramRule`
   in ``repro.analysis.rules.state`` (S-rules: state-surface coverage and
   write ownership), or a new module;
2. decorate it with :func:`register`;
3. make sure the module is imported from this package (the built-in rule
   modules are imported at the bottom of this file);
4. add a paired good/bad fixture under ``tests/analysis/fixtures/`` and a
   case in ``tests/analysis/test_rules.py``.

Rule identifiers: ``DET0xx`` for determinism-input rules, ``PRO1xx`` for
protocol/purity rules, ``STA2xx`` for state-model rules.  Never reuse a
retired identifier — baselines and suppression comments reference them
textually.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Type

from repro.analysis.findings import Finding
from repro.analysis.statemodel import StateModel, extract_state_model


class ModuleSource:
    """One parsed source file, as seen by the rules."""

    __slots__ = ("path", "display_path", "module", "text", "lines", "tree")

    def __init__(self, path: Path, display_path: str, module: str, text: str) -> None:
        self.path = path
        #: The path findings report (repo-relative when resolvable).
        self.display_path = display_path
        #: Dotted module name ("repro.sim.event"), or the bare stem for
        #: files outside a ``repro`` package root (fixtures) — rules use it
        #: for layer allowlists, which therefore never match fixtures.
        self.module = module
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: ast.AST = ast.parse(text, filename=str(path))

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def in_layer(self, *prefixes: str) -> bool:
        """Does this module live under one of the dotted-name prefixes?"""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


class Rule:
    """Base class for all detlint rules."""

    rule_id: str = ""
    description: str = ""
    #: Default fix hint, attached to findings that don't override it.
    hint: str = ""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleSource,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule_id=self.rule_id,
            path=module.display_path,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint if hint is None else hint,
            snippet=module.line_at(lineno),
        )


class ProgramModel:
    """Every scanned module, parsed once; the shared whole-program view.

    Built by the engine after file discovery and handed to every
    :class:`ProgramRule`.  The engine state model is extracted lazily (and
    exactly once) on first access — rule families share both the parse and
    the extraction.
    """

    __slots__ = ("sources", "by_module", "_state_model")

    def __init__(self, sources: List[ModuleSource]) -> None:
        self.sources: List[ModuleSource] = list(sources)
        #: Last-wins by dotted name; fixture files keep bare-stem keys.
        self.by_module: Dict[str, ModuleSource] = {s.module: s for s in self.sources}
        self._state_model: Optional[StateModel] = None

    @property
    def state_model(self) -> StateModel:
        if self._state_model is None:
            self._state_model = extract_state_model(self.sources)
        return self._state_model

    def has_modules(self, *modules: str) -> bool:
        return all(module in self.by_module for module in modules)


class ProgramRule(Rule):
    """Base class for whole-program rules (STA2xx).

    ``check`` (the per-module entry point) is a no-op; the engine dispatches
    these once per scan through ``check_program``.
    """

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        return iter(())

    def check_program(self, program: ProgramModel) -> Iterator[Finding]:
        raise NotImplementedError

    def program_finding(
        self,
        module: ModuleSource,
        node: Optional[ast.AST],
        message: str,
        hint: Optional[str] = None,
    ) -> Finding:
        return self.finding(module, node if node is not None else module.tree, message, hint)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, ordered by rule id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    return sorted(_REGISTRY)


# Import the built-in rule modules so registration runs on package import.
from repro.analysis.rules import determinism as _determinism  # noqa: E402,F401
from repro.analysis.rules import protocol as _protocol  # noqa: E402,F401
from repro.analysis.rules import state as _state  # noqa: E402,F401
