"""Per-line and per-file suppression comments for detlint.

Two pragma forms, mirroring the usual linter conventions:

- ``# detlint: ignore[DET001]`` on the offending line suppresses the named
  rule(s) for that line only.  Multiple rules separate with commas
  (``ignore[DET001,PRO103]``); ``ignore[*]`` suppresses every rule.
- ``# detlint: ignore-file[DET004]`` anywhere in the first
  :data:`FILE_PRAGMA_WINDOW` lines suppresses the named rule(s) for the
  whole file (used for modules that are, as a unit, an intentional
  exception — document why in the comment).

Suppressions are extracted from raw source text (not the AST) so they work
on lines the parser collapses, and so a suppression on a syntax-error line
still parses.
"""

from __future__ import annotations

import re
from typing import Dict, Set

#: ``ignore-file`` pragmas must appear in the first N lines.
FILE_PRAGMA_WINDOW = 15

_LINE_RE = re.compile(r"#\s*detlint:\s*ignore\[([A-Za-z0-9_*,\s]+)\]")
_FILE_RE = re.compile(r"#\s*detlint:\s*ignore-file\[([A-Za-z0-9_*,\s]+)\]")


def _parse_rule_list(raw: str) -> Set[str]:
    return {part.strip() for part in raw.split(",") if part.strip()}


class Suppressions:
    """Suppression pragmas extracted from one module's source text."""

    __slots__ = ("line_rules", "file_rules")

    def __init__(self, source: str) -> None:
        self.line_rules: Dict[int, Set[str]] = {}
        self.file_rules: Set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _LINE_RE.search(line)
            if match:
                self.line_rules.setdefault(lineno, set()).update(
                    _parse_rule_list(match.group(1))
                )
            if lineno <= FILE_PRAGMA_WINDOW:
                match = _FILE_RE.search(line)
                if match:
                    self.file_rules.update(_parse_rule_list(match.group(1)))

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_rules or "*" in self.file_rules:
            return True
        rules = self.line_rules.get(line)
        if not rules:
            return False
        return rule_id in rules or "*" in rules
