"""Committed baseline of grandfathered detlint findings.

The baseline file lets the linter gate *new* violations while known,
documented ones age out: ``repro lint`` fails only on findings absent from
the baseline.  Entries key on ``(rule, path, offending-line text)`` rather
than line numbers, so unrelated edits above a grandfathered line do not
churn the file.

File format (JSON, sorted, trailing newline — diff-friendly)::

    {
      "version": 1,
      "findings": [
        {"rule": "DET004", "path": "repro/faults/harness.py",
         "snippet": "saved = os.environ.get(ENV_FAST)",
         "reason": "engine toggle is the harness's job"},
        ...
      ]
    }

``reason`` is for humans; the matcher ignores it.  Stale entries (present in
the baseline, no longer found) are reported so the file shrinks over time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.common.errors import ConfigError

BASELINE_VERSION = 1
#: Default baseline file name, looked up at the repository root.
DEFAULT_BASELINE_NAME = ".detlint-baseline.json"

BaselineKey = Tuple[str, str, str]


def load_baseline(path: Path) -> Set[BaselineKey]:
    """Load the grandfathered keys from ``path`` (missing file = empty)."""
    if not path.exists():
        return set()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigError(f"unreadable baseline file {path}: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ConfigError(f"baseline file {path} is not a detlint baseline")
    keys: Set[BaselineKey] = set()
    for entry in payload["findings"]:
        try:
            keys.add((entry["rule"], entry["path"], entry["snippet"]))
        except (TypeError, KeyError) as exc:
            raise ConfigError(f"malformed baseline entry in {path}: {entry!r}") from exc
    return keys


def save_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count.

    Entries are deduplicated by key and sorted, so regenerating the file on
    an unchanged tree is a no-op diff.
    """
    seen: Set[BaselineKey] = set()
    entries: List[dict] = []
    for finding in sorted(findings, key=Finding.sort_key):
        key = finding.baseline_key()
        if key in seen:
            continue
        seen.add(key)
        entries.append(
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "snippet": finding.snippet,
                "reason": "grandfathered; fix or document",
            }
        )
    entries.sort(key=lambda e: (e["path"], e["rule"], e["snippet"]))
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return len(entries)


def split_by_baseline(
    findings: Iterable[Finding], baseline: Set[BaselineKey]
) -> Tuple[List[Finding], List[Finding], Set[BaselineKey]]:
    """Partition findings into (new, grandfathered) and report stale keys."""
    new: List[Finding] = []
    old: List[Finding] = []
    matched: Set[BaselineKey] = set()
    for finding in findings:
        key = finding.baseline_key()
        if key in baseline:
            matched.add(key)
            old.append(finding)
        else:
            new.append(finding)
    return new, old, baseline - matched
