"""Analysis tooling: result formatting and the detlint static-analysis pass.

- :mod:`repro.analysis.tables` — text tables/series for benchmark reports.
- :mod:`repro.analysis.engine` / :mod:`repro.analysis.rules` — "detlint",
  the AST-based determinism & simulation-purity linter (``repro lint``).
"""

from repro.analysis.tables import format_table, format_paper_comparison, format_series

__all__ = ["format_table", "format_paper_comparison", "format_series"]
