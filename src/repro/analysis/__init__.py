"""Result formatting: text tables and series for the benchmark reports."""

from repro.analysis.tables import format_table, format_paper_comparison, format_series

__all__ = ["format_table", "format_paper_comparison", "format_series"]
