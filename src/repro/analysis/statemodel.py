"""Whole-program state model: every engine class, every field, every writer.

The fast tiers (FAST horizons, REPRO_MACRO sigma replay, REPRO_BATCH lane
mirrors) are only correct if every mutable field of the simulated machine is
either covered by their snapshot/compare logic or provably untouched.  This
module extracts that state surface statically:

- :data:`STATE_CLASSES` is the canonical registry of engine classes.  It is
  the single source of truth shared by PRO103 (``SLOTS_MANIFEST`` is now
  *derived* from it, see :func:`derive_slots_manifest`) and the STA2xx rules,
  so the two families can never disagree about which classes are hot-path.
- :func:`extract_state_model` walks the parsed ASTs of a scanned program and
  unifies ``__slots__`` declarations, dataclass annotations, and attribute
  assignments into a per-class field model: name, defining module, mutability,
  and where-written.
- :func:`state_model_to_json` emits the model as a stable, schema-versioned
  JSON artifact (``repro lint --statemodel-out``); the committed copy at the
  repo root (``STATEMODEL.json``) makes state-surface changes visible in
  review.

Semantics worth knowing:

- *Field-level* model: a field is **mutable** when the attribute itself is
  rebound, augmented, or subscript-stored outside the defining class's
  ``__init__``/``__post_init__`` (including from other modules).  In-place
  mutation through method calls (``self.rob.append(...)``) is invisible at
  this level; deep state is covered by the inner object's own class being in
  the registry (e.g. ``KBTimerState`` fields, not the ``kb_timer`` handle).
- Writes are resolved to classes by field name.  A receiver whose name hints
  a registered class (``core.cycle`` -> ``Core``) resolves strictly; a field
  name unique to one class resolves to it; ambiguous names attach the writer
  to every candidate (the ownership rules then judge leniently — a write
  passes if *any* candidate's owner permits it, so ambiguity can only relax,
  never invent, a finding).

Fixture files opt classes into the model with a pragma::

    # detlint: state-class[MyCore owner=engine.pkg core hot]

``owner=`` overrides the owning package (default: the first two dotted
components of the defining module), ``core`` marks the class as the
machine-state class targeted by the snapshot-coverage rules, ``hot`` adds it
to the derived slots manifest.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Schema version of the ``--statemodel-out`` JSON artifact.  Bump on any
#: field addition/removal/rename in the emitted object.
STATE_SCHEMA_VERSION = 1

#: Methods whose self-writes count as *construction*, not mutation.
_INIT_METHODS = frozenset(("__init__", "__post_init__"))


@dataclass(frozen=True)
class StateClassSpec:
    """One registry entry: an engine class detlint must model."""

    module: str
    name: str
    #: Owning package prefix — the only modules allowed to write this
    #: class's fields without an explicit grant (default: first two dotted
    #: components of ``module``).
    owner: str
    #: Listed in the derived ``SLOTS_MANIFEST`` (PRO103).
    hot_path: bool = True
    #: The machine-state class the snapshot-coverage rules (STA201/202)
    #: audit field-by-field.
    core_state: bool = False


def _default_owner(module: str) -> str:
    return ".".join(module.split(".")[:2])


def _spec(module: str, name: str, *, core: bool = False) -> StateClassSpec:
    return StateClassSpec(
        module=module, name=name, owner=_default_owner(module), core_state=core
    )


#: The canonical engine-class registry.  Order within a module is preserved
#: into the derived slots manifest.  Growing the model?  Add per-event/
#: per-uop/per-packet classes here — PRO103 and STA2xx pick them up together.
STATE_CLASSES: Tuple[StateClassSpec, ...] = (
    _spec("repro.sim.event", "Event"),
    _spec("repro.sim.event", "EventQueue"),
    _spec("repro.sim.simulator", "Simulator"),
    _spec("repro.sim.trace", "TraceEvent"),
    _spec("repro.sim.trace", "TraceRecorder"),
    _spec("repro.obs.ring", "RingBuffer"),
    _spec("repro.obs.events", "InstantEvent"),
    _spec("repro.obs.events", "SpanEvent"),
    _spec("repro.obs.spans", "Tracer"),
    _spec("repro.obs.spans", "SpanHandle"),
    _spec("repro.obs.hist", "LatencyHistogram"),
    _spec("repro.obs.registry", "MetricsRegistry"),
    _spec("repro.cpu.core", "Core", core=True),
    _spec("repro.cpu.backend", "UOp"),
    _spec("repro.cpu.batchstep", "BatchScheduler"),
    _spec("repro.cpu.hotness", "HotnessTracker"),
    _spec("repro.cpu.macroop", "MacroController"),
    _spec("repro.cpu.macroop", "_UopShot"),
    _spec("repro.cpu.macroop", "_Snapshot"),
    _spec("repro.cpu.macroop", "_Match"),
    _spec("repro.cpu.macroop", "_CacheOverlay"),
    _spec("repro.cpu.uopcache", "UopCache"),
    _spec("repro.cpu.uopcache", "UopCacheEntry"),
    _spec("repro.cpu.uintr_state", "KBTimerState"),
    _spec("repro.cpu.uintr_state", "UserInterruptFile"),
    _spec("repro.uintr.apic", "PendingInterrupt"),
    _spec("repro.uintr.apic", "LocalApic"),
    _spec("repro.uintr.upid", "UPID"),
    _spec("repro.net.packet", "Packet"),
    _spec("repro.kernel.threads", "KernelThread"),
    _spec("repro.accel.dsa", "OffloadRequest"),
    _spec("repro.runtime.timerwheel", "TimeoutHandle"),
    _spec("repro.cluster.topology", "ClusterTopology"),
    _spec("repro.cluster.topology", "ShardSpec"),
    _spec("repro.cluster.topology", "TenantSpec"),
    _spec("repro.cluster.shard", "ShardJob"),
    _spec("repro.cluster.shard", "ShardResult"),
)

#: Receiver-name hints: a write through a receiver with one of these names
#: resolves *strictly* to the named class (when the field exists on it).
#: Lower-cased class names resolve automatically; these are the extras.
RECEIVER_HINTS: Dict[str, str] = {
    "apic": "LocalApic",
    "uintr": "UserInterruptFile",
    "kb_timer": "KBTimerState",
    "timer": "KBTimerState",
    "thread": "KernelThread",
    "queue": "EventQueue",
    "sim": "Simulator",
    "uop": "UOp",
    "u": "UOp",
}

#: Fixture/ad-hoc files declare state classes with this pragma (see module
#: docstring for the token grammar).
_STATE_CLASS_PRAGMA_RE = re.compile(r"#\s*detlint:\s*state-class\[([^\]]+)\]")


def derive_slots_manifest() -> Dict[str, Tuple[str, ...]]:
    """The PRO103 slots manifest, derived from :data:`STATE_CLASSES`."""
    manifest: Dict[str, List[str]] = {}
    for spec in STATE_CLASSES:
        if spec.hot_path:
            manifest.setdefault(spec.module, []).append(spec.name)
    return {module: tuple(names) for module, names in manifest.items()}


@dataclass(frozen=True)
class FieldInfo:
    """One field of a modeled class."""

    name: str
    #: Rebound/augmented/subscript-stored outside the defining class's
    #: constructor (see module docstring for exact semantics).
    mutable: bool
    #: Sorted ``"module:line"`` sites that write the field.
    writers: Tuple[str, ...]


@dataclass(frozen=True)
class ClassModel:
    """One modeled class with its extracted field surface."""

    name: str
    module: str
    owner: str
    hot_path: bool
    core_state: bool
    fields: Tuple[FieldInfo, ...]

    def field(self, name: str) -> Optional[FieldInfo]:
        for info in self.fields:
            if info.name == name:
                return info
        return None

    def mutable_fields(self) -> Tuple[FieldInfo, ...]:
        return tuple(info for info in self.fields if info.mutable)


@dataclass(frozen=True)
class AttrWrite:
    """One attribute store, as seen by the write-graph pass."""

    module: str
    line: int
    #: Final attribute name stored to (``a.b.f = v`` -> ``f``).
    attr: str
    #: Name immediately left of the attr (``a.b.f`` -> ``b``), lower-cased;
    #: empty when not a simple name.
    receiver: str
    #: Root of the chain is literally ``self`` and the chain is one level
    #: deep — the class's own field, attributed during extraction.
    self_direct: bool
    #: Enclosing (class, method) when inside a class body, else ("", fn).
    cls: str
    func: str


class StateModel:
    """The extracted whole-program state model."""

    __slots__ = ("classes", "writes", "_by_name", "_field_index")

    def __init__(
        self, classes: Sequence[ClassModel], writes: Sequence[AttrWrite]
    ) -> None:
        self.classes: Tuple[ClassModel, ...] = tuple(
            sorted(classes, key=lambda c: (c.module, c.name))
        )
        self.writes: Tuple[AttrWrite, ...] = tuple(writes)
        self._by_name: Dict[str, ClassModel] = {c.name: c for c in self.classes}
        index: Dict[str, List[ClassModel]] = {}
        for cls in self.classes:
            for info in cls.fields:
                index.setdefault(info.name, []).append(cls)
        self._field_index = index

    def get(self, name: str) -> Optional[ClassModel]:
        return self._by_name.get(name)

    def classes_with_field(self, attr: str) -> Tuple[ClassModel, ...]:
        return tuple(self._field_index.get(attr, ()))

    def core_classes(self) -> Tuple[ClassModel, ...]:
        return tuple(c for c in self.classes if c.core_state)

    def resolve_write(self, write: AttrWrite) -> Tuple[ClassModel, ...]:
        """Candidate classes for one store: strict on receiver hint, else
        every class declaring the field (empty = not modeled state)."""
        candidates = self.classes_with_field(write.attr)
        if not candidates:
            return ()
        hinted = RECEIVER_HINTS.get(write.receiver, "")
        for cls in candidates:
            if cls.name == hinted or cls.name.lower() == write.receiver:
                return (cls,)
        return candidates


# ---------------------------------------------------------------------------
# Extraction


def _parse_state_class_pragmas(module: str, text: str) -> List[StateClassSpec]:
    specs: List[StateClassSpec] = []
    for match in _STATE_CLASS_PRAGMA_RE.finditer(text):
        tokens = match.group(1).split()
        if not tokens:
            continue
        name = tokens[0]
        owner = module
        hot = False
        core = False
        for token in tokens[1:]:
            if token.startswith("owner="):
                owner = token[len("owner=") :]
            elif token == "hot":
                hot = True
            elif token == "core":
                core = True
        specs.append(
            StateClassSpec(
                module=module, name=name, owner=owner, hot_path=hot, core_state=core
            )
        )
    return specs


def _slots_names(cls: ast.ClassDef) -> List[str]:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    value = stmt.value
                    if isinstance(value, (ast.Tuple, ast.List)):
                        return [
                            elt.value
                            for elt in value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        ]
    return []


def _annotation_fields(cls: ast.ClassDef) -> List[str]:
    names: List[str] = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            names.append(stmt.target.id)
    return names


def _store_targets(node: ast.stmt) -> List[ast.expr]:
    if isinstance(node, ast.Assign):
        out: List[ast.expr] = []
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                out.extend(target.elts)
            else:
                out.append(target)
        return out
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target] if getattr(node, "value", True) is not None else []
    return []


def _attr_of_target(target: ast.expr) -> Optional[ast.Attribute]:
    """The Attribute being stored to: ``a.f = v`` and ``a.f[i] = v`` both
    write field ``f`` (the latter mutates the container it holds)."""
    if isinstance(target, ast.Subscript):
        target = target.value  # type: ignore[assignment]
    return target if isinstance(target, ast.Attribute) else None


def _receiver_of(attr: ast.Attribute) -> Tuple[str, bool]:
    """(receiver hint, self_direct) for a stored-to attribute."""
    value = attr.value
    if isinstance(value, ast.Name):
        return value.id.lower(), value.id == "self"
    if isinstance(value, ast.Attribute):
        return value.attr.lower(), False
    return "", False


def iter_attr_writes(module: str, tree: ast.AST) -> Iterator[AttrWrite]:
    """Every attribute store in ``tree``, with enclosing class/function."""

    def walk(node: ast.AST, cls: str, func: str) -> Iterator[AttrWrite]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child.name, func)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from walk(child, cls, child.name)
            else:
                if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    for target in _store_targets(child):
                        attr = _attr_of_target(target)
                        if attr is None:
                            continue
                        receiver, self_direct = _receiver_of(attr)
                        yield AttrWrite(
                            module=module,
                            line=child.lineno,
                            attr=attr.attr,
                            receiver=receiver,
                            self_direct=self_direct,
                            cls=cls,
                            func=func,
                        )
                yield from walk(child, cls, func)

    yield from walk(tree, "", "")


def _class_defs(tree: ast.AST) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def local_class_fields(tree: ast.AST) -> Set[str]:
    """Field names of every class defined in ``tree`` (slots, annotations,
    and direct self-writes) — used to tell writes to a module's own local
    classes apart from writes to modeled engine state."""
    names: Set[str] = set()
    for cls in _class_defs(tree):
        names.update(_slots_names(cls))
        names.update(_annotation_fields(cls))
        for node in ast.walk(cls):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                for target in _store_targets(node):
                    attr = _attr_of_target(target)
                    if (
                        attr is not None
                        and isinstance(attr.value, ast.Name)
                        and attr.value.id == "self"
                    ):
                        names.add(attr.attr)
    return names


def nonmodel_class_fields(tree: ast.AST, modeled: Set[str]) -> Set[str]:
    """Fields of classes in ``tree`` that are *not* in the state model."""
    names: Set[str] = set()
    for cls in _class_defs(tree):
        if cls.name in modeled:
            continue
        names |= local_class_fields(cls)
    return names


def stored_attr_names(node: ast.AST) -> Set[str]:
    """Attribute names stored to anywhere under ``node`` — including
    container mutation through a subscript (``self.x[i] = v`` stores to
    ``x`` even though the Attribute itself is in Load context)."""
    names: Set[str] = set()
    for stmt in ast.walk(node):
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            for target in _store_targets(stmt):
                attr = _attr_of_target(target)
                if attr is not None:
                    names.add(attr.attr)
    return names


def extract_state_model(sources: Iterable) -> StateModel:
    """Build the :class:`StateModel` for a scanned program.

    ``sources`` is any iterable of objects with ``.module`` (dotted name),
    ``.text``, and ``.tree`` attributes (:class:`ModuleSource` satisfies
    this).  Registry entries whose module is absent from the program are
    skipped, so fixture scans model only what they declare via pragma.
    """
    by_module: Dict[str, List] = {}
    ordered = list(sources)
    for source in ordered:
        by_module.setdefault(source.module, []).append(source)

    specs: List[StateClassSpec] = [
        spec for spec in STATE_CLASSES if spec.module in by_module
    ]
    for source in ordered:
        specs.extend(_parse_state_class_pragmas(source.module, source.text))

    # Phase A: per-class declared fields + own-method write sites.
    fields: Dict[Tuple[str, str], Dict[str, List[str]]] = {}
    mutated: Dict[Tuple[str, str], Set[str]] = {}
    spec_index: Dict[Tuple[str, str], StateClassSpec] = {}
    for spec in specs:
        key = (spec.module, spec.name)
        if key in spec_index:
            continue
        spec_index[key] = spec
        for source in by_module.get(spec.module, ()):
            for cls in _class_defs(source.tree):
                if cls.name != spec.name:
                    continue
                declared: Dict[str, List[str]] = {}
                for name in _slots_names(cls) + _annotation_fields(cls):
                    declared.setdefault(name, [])
                fields[key] = declared
                mutated.setdefault(key, set())

    # Phase B: attribute-write pass over the whole program.
    all_writes: List[AttrWrite] = []
    class_by_name: Dict[str, List[Tuple[str, str]]] = {}
    for key in fields:
        class_by_name.setdefault(key[1], []).append(key)

    # Fields of each module's own non-modeled classes: a hint-less write to
    # such a name stays the module's business and is not attributed to the
    # model (e.g. a local dataclass that happens to share a field name with
    # an engine class).
    local_nonmodel: Dict[str, Set[str]] = {}
    for source in ordered:
        modeled_here = {key[1] for key in fields if key[0] == source.module}
        local_nonmodel[source.module] = nonmodel_class_fields(
            source.tree, modeled_here
        )

    def record(key: Tuple[str, str], name: str, write: AttrWrite) -> None:
        declared = fields[key]
        declared.setdefault(name, []).append(f"{write.module}:{write.line}")
        own_init = (
            write.module == key[0]
            and write.cls == key[1]
            and write.func in _INIT_METHODS
        )
        if not own_init:
            mutated[key].add(name)

    for source in ordered:
        for write in iter_attr_writes(source.module, source.tree):
            all_writes.append(write)
            if write.self_direct and write.cls:
                # Unambiguous: self.<attr> inside class <cls>.
                for key in class_by_name.get(write.cls, ()):
                    if key[0] == write.module:
                        record(key, write.attr, write)
                continue
            hinted = RECEIVER_HINTS.get(write.receiver, "")
            candidates = [
                key
                for keys in class_by_name.values()
                for key in keys
                if write.attr in fields[key]
            ]
            strict = [
                key
                for key in candidates
                if key[1] == hinted or key[1].lower() == write.receiver
            ]
            if not strict and write.attr in local_nonmodel.get(write.module, ()):
                continue
            for key in strict or candidates:
                record(key, write.attr, write)

    classes: List[ClassModel] = []
    for key, spec in spec_index.items():
        declared = fields.get(key)
        if declared is None:
            continue
        infos = tuple(
            FieldInfo(
                name=name,
                mutable=name in mutated[key],
                writers=tuple(sorted(set(declared[name]))),
            )
            for name in sorted(declared)
        )
        classes.append(
            ClassModel(
                name=spec.name,
                module=spec.module,
                owner=spec.owner,
                hot_path=spec.hot_path,
                core_state=spec.core_state,
                fields=infos,
            )
        )
    return StateModel(classes, all_writes)


# ---------------------------------------------------------------------------
# JSON emission


def state_model_to_dict(model: StateModel) -> Dict:
    return {
        "schema": STATE_SCHEMA_VERSION,
        "classes": [
            {
                "class": cls.name,
                "module": cls.module,
                "owner": cls.owner,
                "hot_path": cls.hot_path,
                "core_state": cls.core_state,
                "fields": [
                    {
                        "name": info.name,
                        "mutable": info.mutable,
                        "writers": list(info.writers),
                    }
                    for info in cls.fields
                ],
            }
            for cls in model.classes
        ],
    }


def state_model_to_json(model: StateModel) -> str:
    """Byte-stable rendering: sorted classes/fields/writers, sorted keys,
    trailing newline — safe to commit and diff in CI."""
    return json.dumps(state_model_to_dict(model), indent=2, sort_keys=True) + "\n"
