"""Finding records produced by the detlint rules.

A finding pins one determinism/purity hazard to a source location.  Findings
are value objects with a total, stable ordering — ``(path, line, col,
rule_id, message)`` — so text reports, ``--json`` output, and baseline files
are byte-reproducible run to run (the linter holds itself to the invariants
it enforces).

JSON schema (``Finding.to_dict``, schema version 1)::

    {
      "rule": "DET001",          # rule identifier
      "path": "repro/sim/x.py",  # path as scanned (repo-relative when possible)
      "line": 12,                # 1-based line of the offending node
      "col": 4,                  # 0-based column of the offending node
      "message": "...",          # what is wrong
      "hint": "...",             # how to fix it
      "snippet": "..."           # the stripped source line (baseline anchor)
    }
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

#: Version of the ``--json`` finding schema (bump on incompatible change).
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""
    #: The stripped text of the offending line; baselines anchor on it so
    #: entries survive unrelated line-number drift.
    snippet: str = ""

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule_id, self.message)

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used by the baseline file: line numbers drift, the
        (rule, file, offending line text) triple rarely does."""
        return (self.rule_id, self.path, self.snippet)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "snippet": self.snippet,
        }

    def format_text(self) -> str:
        hint = f"  [fix: {self.hint}]" if self.hint else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}{hint}"
