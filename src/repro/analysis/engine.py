"""The detlint scan engine: file discovery, rule dispatch, report assembly.

The engine is deliberately boring: collect files, parse each exactly once
into a :class:`ProgramModel` shared by every rule family, run the per-module
rules over each parsed module and the whole-program rules over the model,
drop suppressed findings, partition the rest against the baseline, and
return a :class:`LintReport`.  All policy (what is a hazard, what is
grandfathered) lives in the rules and the baseline file; all presentation
lives in :mod:`repro.analysis.lint`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import BaselineKey, load_baseline, split_by_baseline
from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleSource, ProgramModel, ProgramRule, Rule, all_rules
from repro.analysis.suppressions import Suppressions
from repro.common.errors import ConfigError

#: Directory names never scanned.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis"}


def default_scan_root() -> Path:
    """The installed ``repro`` package directory (works from any cwd)."""
    import repro

    return Path(repro.__file__).resolve().parent


def repo_root() -> Optional[Path]:
    """The checkout root (parent of ``src``), or None when installed flat."""
    package = default_scan_root()
    src = package.parent
    if src.name == "src":
        return src.parent
    return None


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    out: Set[Path] = set()
    for path in paths:
        path = path.resolve()
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    out.add(candidate)
        elif path.is_file():
            out.add(path)
        else:
            raise ConfigError(f"lint path does not exist: {path}")
    return sorted(out)


def module_name_for(path: Path) -> str:
    """Dotted module name when ``path`` sits under a ``repro`` package root,
    else the bare stem (fixtures — never matches a layer allowlist)."""
    parts = path.with_suffix("").parts
    for anchor in range(len(parts) - 1, -1, -1):
        if parts[anchor] == "repro" and (
            anchor == 0 or parts[anchor - 1] in ("src", "site-packages")
        ):
            dotted = list(parts[anchor:])
            if dotted[-1] == "__init__":
                dotted.pop()
            return ".".join(dotted)
    return parts[-1]


def display_path_for(path: Path) -> str:
    """Repo-relative path when possible (stable across machines)."""
    root = repo_root()
    if root is not None:
        try:
            return path.resolve().relative_to(root).as_posix()
        except ValueError:
            pass
    return path.as_posix()


@dataclass
class LintReport:
    """Outcome of one scan."""

    files_scanned: int = 0
    rules_run: int = 0
    #: Findings not covered by a suppression or the baseline — these gate.
    new_findings: List[Finding] = field(default_factory=list)
    #: Findings matched by the committed baseline (reported, non-gating).
    baselined_findings: List[Finding] = field(default_factory=list)
    #: Count of findings silenced by inline pragmas.
    suppressed_count: int = 0
    #: Baseline entries that matched nothing (candidates for deletion).
    stale_baseline: List[BaselineKey] = field(default_factory=list)
    #: Files that failed to parse, as (display_path, error) pairs — these
    #: gate too: an unparseable file is an unauditable file.
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    #: The shared whole-program view the scan ran over (parsed modules +
    #: lazily-extracted state model); ``--statemodel-out`` reads it.
    program: Optional[ProgramModel] = None

    @property
    def ok(self) -> bool:
        return not self.new_findings and not self.parse_errors

    def all_findings(self) -> List[Finding]:
        return sorted(self.new_findings + self.baselined_findings, key=Finding.sort_key)


def run_rules(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Set[BaselineKey]] = None,
    baseline_path: Optional[Path] = None,
) -> LintReport:
    """Scan ``paths`` with ``rules`` (default: every registered rule).

    ``baseline`` wins over ``baseline_path``; both absent means an empty
    baseline (every finding gates).
    """
    if rules is None:
        rules = all_rules()
    if baseline is None:
        baseline = load_baseline(baseline_path) if baseline_path is not None else set()

    module_rules = [r for r in rules if not isinstance(r, ProgramRule)]
    program_rules = [r for r in rules if isinstance(r, ProgramRule)]

    report = LintReport(rules_run=len(rules))
    raw: List[Finding] = []

    # Phase 1: parse every file exactly once; the resulting sources are the
    # single shared corpus for per-module and whole-program rules alike.
    sources: List[ModuleSource] = []
    suppressions_by_path: Dict[str, Suppressions] = {}
    for path in collect_files(paths):
        display = display_path_for(path)
        try:
            text = path.read_text(encoding="utf-8")
            module = ModuleSource(path, display, module_name_for(path), text)
        except (OSError, SyntaxError, ValueError) as exc:
            report.parse_errors.append((display, str(exc)))
            continue
        report.files_scanned += 1
        sources.append(module)
        suppressions_by_path[display] = Suppressions(text)

    def emit(finding: Finding) -> None:
        suppressions = suppressions_by_path.get(finding.path)
        if suppressions is not None and suppressions.is_suppressed(
            finding.rule_id, finding.line
        ):
            report.suppressed_count += 1
        else:
            raw.append(finding)

    # Phase 2: per-module rules.
    for module in sources:
        for rule in module_rules:
            for finding in rule.check(module):
                emit(finding)

    # Phase 3: whole-program rules over the shared model.
    program = ProgramModel(sources)
    report.program = program
    for rule in program_rules:
        for finding in rule.check_program(program):
            emit(finding)

    raw.sort(key=Finding.sort_key)
    new, old, stale = split_by_baseline(raw, baseline)
    report.new_findings = new
    report.baselined_findings = old
    report.stale_baseline = sorted(stale)
    return report
