"""Plain-text table/series rendering for benchmark output.

The benchmark harness prints each table/figure in the same shape the paper
reports it; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def _fmt(value: object, precision: int = 1) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    precision: int = 1,
) -> str:
    """Render an aligned text table."""
    rendered_rows = [[_fmt(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_paper_comparison(
    rows: Mapping[str, Mapping[str, Number]],
    title: str = "",
    paper_key: str = "paper",
    measured_key: str = "measured",
) -> str:
    """Render metric -> {paper, measured} dicts with a ratio column."""
    table_rows = []
    for metric, values in rows.items():
        paper = float(values[paper_key])
        measured = float(values[measured_key])
        ratio = measured / paper if paper else float("nan")
        table_rows.append([metric, paper, measured, ratio])
    return format_table(
        ["metric", "paper", "measured", "measured/paper"],
        table_rows,
        title=title,
        precision=2,
    )


def format_series(
    series: Mapping[str, Mapping[Number, Number]],
    x_label: str,
    y_label: str,
    title: str = "",
    precision: int = 2,
) -> str:
    """Render {series_name: {x: y}} as a table with one column per series."""
    xs = sorted({x for points in series.values() for x in points})
    headers = [x_label] + [f"{name} ({y_label})" for name in series]
    rows = []
    for x in xs:
        row: List[object] = [x]
        for name in series:
            row.append(series[name].get(x, float("nan")))
        rows.append(row)
    return format_table(headers, rows, title=title, precision=precision)
