"""The ``repro lint`` command: presentation and exit-code policy.

Usage (via the main CLI)::

    python -m repro lint                       # scan the shipped src tree
    python -m repro lint path/to/file.py dir/  # scan explicit paths
    python -m repro lint --json                # machine-readable findings
    python -m repro lint --list-rules          # rule catalogue
    python -m repro lint --write-baseline      # grandfather current findings
    python -m repro lint --statemodel-out f.json   # dump the engine state model

Exit codes: 0 clean (no new findings), 1 new findings or parse errors,
2 usage/configuration error.  Baselined findings and suppressed counts are
reported but never gate.

``--json`` emits one stable, documented object (see
:data:`repro.analysis.findings.JSON_SCHEMA_VERSION`)::

    {
      "schema": 1,
      "ok": true,
      "findings": [...],            # new findings, sorted
      "baselined": [...],           # grandfathered findings, sorted
      "summary": {"files_scanned": N, "rules_run": N,
                  "new": N, "baselined": N, "suppressed": N,
                  "stale_baseline": N, "parse_errors": N}
    }

Ordering is total — ``(path, line, col, rule, message)`` — so CI diffing and
the fault-replay harness can consume the output byte-stably.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, load_baseline, save_baseline
from repro.analysis.engine import default_scan_root, repo_root, run_rules
from repro.analysis.findings import JSON_SCHEMA_VERSION, Finding
from repro.analysis.rules import all_rules
from repro.common.errors import ConfigError


def build_lint_parser(parser: Optional[argparse.ArgumentParser] = None) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="determinism & simulation-purity static analysis (detlint)",
        )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to scan (default: the shipped repro package)",
    )
    parser.add_argument("--json", action="store_true", help="emit machine-readable findings")
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE_NAME} at the repo root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (every finding gates)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalogue")
    parser.add_argument(
        "--statemodel-out",
        default=None,
        metavar="FILE",
        help=(
            "write the extracted engine state model (schema-versioned, "
            "byte-stable JSON) to FILE after the scan"
        ),
    )
    return parser


def _default_baseline_path() -> Optional[Path]:
    root = repo_root()
    return root / DEFAULT_BASELINE_NAME if root is not None else None


def _print_list_rules() -> int:
    for rule in all_rules():
        print(f"  {rule.rule_id}  {rule.description}")
    print(
        "\nSuppress one occurrence with `# detlint: ignore[RULE]`, a whole "
        "file with `# detlint: ignore-file[RULE]` near the top."
    )
    return 0


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        return _print_list_rules()

    paths = [Path(p) for p in args.paths] if args.paths else [default_scan_root()]

    baseline_path: Optional[Path]
    if args.no_baseline:
        baseline_path = None
    elif args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = _default_baseline_path()

    try:
        baseline = load_baseline(baseline_path) if baseline_path is not None else set()
        report = run_rules(paths, baseline=baseline)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.statemodel_out is not None and report.program is not None:
        from repro.analysis.statemodel import state_model_to_json

        out_path = Path(args.statemodel_out)
        out_path.write_text(state_model_to_json(report.program.state_model))
        print(f"wrote state model to {out_path}", file=sys.stderr)

    if args.write_baseline:
        if baseline_path is None:
            print("error: no baseline path available (use --baseline FILE)", file=sys.stderr)
            return 2
        count = save_baseline(
            baseline_path, report.new_findings + report.baselined_findings
        )
        print(f"wrote {count} finding(s) to {baseline_path}")
        return 0

    if args.json:
        payload = {
            "schema": JSON_SCHEMA_VERSION,
            "ok": report.ok,
            "findings": [f.to_dict() for f in report.new_findings],
            "baselined": [f.to_dict() for f in report.baselined_findings],
            "summary": {
                "files_scanned": report.files_scanned,
                "rules_run": report.rules_run,
                "new": len(report.new_findings),
                "baselined": len(report.baselined_findings),
                "suppressed": report.suppressed_count,
                "stale_baseline": len(report.stale_baseline),
                "parse_errors": len(report.parse_errors),
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if report.ok else 1

    return _print_text_report(report)


def _print_text_report(report) -> int:
    for display, error in report.parse_errors:
        print(f"{display}: PARSE ERROR {error}")
    findings: List[Finding] = report.new_findings
    for finding in findings:
        print(finding.format_text())
    for finding in report.baselined_findings:
        print(f"{finding.format_text()}  (baselined)")
    for key in report.stale_baseline:
        print(f"stale baseline entry (fixed? delete it): {key}")
    status = "OK" if report.ok else "FAILED"
    print(
        f"detlint: {status} — {report.files_scanned} file(s), "
        f"{report.rules_run} rule(s), {len(findings)} new finding(s), "
        f"{len(report.baselined_findings)} baselined, "
        f"{report.suppressed_count} suppressed"
    )
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    return run_lint(build_lint_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
