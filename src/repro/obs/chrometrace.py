"""Chrome trace-event (Perfetto-loadable) JSON export.

Converts structured :mod:`repro.obs` events — and legacy
``TraceRecorder`` events via :func:`from_recorder` — into the Chrome
trace-event format (the ``{"traceEvents": [...]}`` JSON that
https://ui.perfetto.dev and ``chrome://tracing`` open directly).

Mapping:

* each :class:`TraceGroup` (one observed experiment run, e.g. one delivery
  strategy) becomes a Chrome **process** (``pid``), named in a
  ``process_name`` metadata record;
* each track (``core0``, ``apic1``, ``timer0``, ``kernel.sched0``,
  ``sim.events``, ``faults``) becomes a **thread** (``tid``) of that
  process, named and sorted via ``thread_name`` / ``thread_sort_index``
  metadata so cores render first, then APICs, timers, the kernel
  scheduler, the event-tier calendar, and fault markers;
* :class:`~repro.obs.events.SpanEvent` → a complete ``"X"`` event,
  :class:`~repro.obs.events.InstantEvent` → a thread-scoped ``"i"`` event.

Timestamps are simulated cycles converted to microseconds of the paper's
2 GHz clock (``ts_us = cycles / 2000``) so Perfetto's time axis reads in
real units.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence, Tuple, Union

from repro.obs.events import (
    InstantEvent,
    SpanEvent,
    category_for_kind,
    track_for_kind,
)

#: The paper's clock: 2 GHz, so 2000 simulated cycles per microsecond.
CYCLES_PER_US = 2000.0

#: Schema tag stamped into the export's ``otherData``.
TRACE_SCHEMA = "repro.obs.chrometrace/v1"

ObsEvent = Union[InstantEvent, SpanEvent]


@dataclass
class TraceGroup:
    """One Chrome *process* worth of events (e.g. one strategy's run)."""

    name: str
    events: List[ObsEvent] = field(default_factory=list)
    #: Events evicted from the ring before export (reported, never hidden).
    dropped: int = 0


def from_recorder(recorder_events: Iterable[Any]) -> List[InstantEvent]:
    """Convert legacy ``TraceRecorder`` events to structured instants.

    Accepts anything with ``.time``/``.kind``/``.detail`` (duck-typed so
    this module never imports :mod:`repro.sim.trace`).
    """
    out: List[InstantEvent] = []
    for event in recorder_events:
        detail = dict(event.detail)
        out.append(
            InstantEvent(
                ts=event.time,
                name=event.kind,
                track=track_for_kind(event.kind, detail),
                category=category_for_kind(event.kind),
                args=detail,
            )
        )
    return out


# -- track ordering ---------------------------------------------------------

_TRACK_RANKS: Tuple[Tuple[str, int], ...] = (
    ("core", 0),
    ("apic", 1),
    ("timer", 2),
    ("kernel.sched", 3),
    ("sim.events", 4),
    ("faults", 5),
)


def _track_sort_key(track: str) -> Tuple[int, str]:
    for prefix, rank in _TRACK_RANKS:
        if track.startswith(prefix):
            # Zero-pad any trailing index so core10 sorts after core2.
            suffix = track[len(prefix):]
            return rank, f"{prefix}{suffix.rjust(8, '0')}" if suffix.isdigit() else track
    return len(_TRACK_RANKS), track


def chrome_events(group: TraceGroup, pid: int) -> List[Dict[str, Any]]:
    """All Chrome trace records for one group, metadata first."""
    tracks = sorted({event.track for event in group.events}, key=_track_sort_key)
    tids = {track: tid for tid, track in enumerate(tracks, start=1)}

    records: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": group.name},
        }
    ]
    for track in tracks:
        records.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tids[track],
                "name": "thread_name",
                "args": {"name": track},
            }
        )
        records.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tids[track],
                "name": "thread_sort_index",
                "args": {"sort_index": tids[track]},
            }
        )

    for event in sorted(group.events, key=lambda e: (e.ts, e.track, e.name)):
        record: Dict[str, Any] = {
            "pid": pid,
            "tid": tids[event.track],
            "ts": event.ts / CYCLES_PER_US,
            "name": event.name,
            "cat": event.category or "misc",
            "args": {**event.args, "cycle": event.ts},
        }
        if isinstance(event, SpanEvent):
            record["ph"] = "X"
            record["dur"] = event.dur / CYCLES_PER_US
            record["args"]["dur_cycles"] = event.dur
        else:
            record["ph"] = "i"
            record["s"] = "t"
        records.append(record)
    return records


def build_trace(groups: Sequence[TraceGroup]) -> Dict[str, Any]:
    """The full Chrome trace document for a sequence of groups."""
    records: List[Dict[str, Any]] = []
    dropped: Dict[str, int] = {}
    for pid, group in enumerate(groups, start=1):
        records.extend(chrome_events(group, pid))
        if group.dropped:
            dropped[group.name] = group.dropped
    return {
        "traceEvents": records,
        "displayTimeUnit": "ns",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "clock": "simulated cycles @ 2 GHz (ts in us = cycles / 2000)",
            "dropped_events": dropped,
        },
    }


def write_trace(path: str, groups: Sequence[TraceGroup]) -> Dict[str, Any]:
    """Write the Perfetto JSON for ``groups`` to ``path``; returns the doc."""
    document = build_trace(groups)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return document
