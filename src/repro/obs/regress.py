"""Perf-regression gating: fresh bench numbers vs. the committed baseline.

``repro bench-gate`` runs the cold-engine benchmark suite
(``benchmarks/bench_report.py``) fresh — without overwriting the committed
``BENCH_cycletier.json`` — and compares it against that baseline:

* ``results_identical`` may never regress: if the baseline says the fast
  and naive engines agreed on a bench and the fresh run says they do not,
  the gate fails hard regardless of tolerance (that is a correctness bug,
  not a slowdown).
* ``wall_fast_s`` may grow by at most the tolerance (default 25%, because
  shared-container wall clocks are noisy; CI runs this job non-blocking).
* the fresh run's own speedup gates (``payload["ok"]``) must still hold,
  and every gated bench gets an explicit per-bench ``gated_speedup`` row
  (stall-heavy benches via cycle skipping, dense-loop benches via the
  ``REPRO_MACRO`` macro-op replay tier — both floored at the report's
  ``gate_speedup``).

A baseline recorded from a dirty working tree (``meta.git_dirty``) earns a
loud warning: its sha does not identify the measured code.  A baseline
whose ``schema`` differs from the one the fresh suite emits fails the gate
outright: the suite's bench set or field meanings changed under it, so its
numbers no longer gate anything — regenerate ``BENCH_cycletier.json``.

This is the **one** module in the observability subsystem allowed to read
the wall clock (it times host execution, not simulated time); the detlint
layer allowlist covers ``repro.obs`` for exactly this reason, and
everything else in the package sticks to simulated cycles anyway.

Exit codes: 0 = within tolerance, 1 = regression, 2 = cannot gate
(missing/unreadable baseline).
"""

from __future__ import annotations

import importlib.util
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.common.errors import ConfigError
from repro.analysis.engine import repo_root

#: Default allowed wall-clock growth before the gate trips.
DEFAULT_TOLERANCE = 0.25

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_NO_BASELINE = 2


def parse_tolerance(text: str) -> float:
    """Parse ``"25%"`` or ``"0.25"`` into a fraction; must be >= 0."""
    raw = text.strip()
    try:
        if raw.endswith("%"):
            value = float(raw[:-1]) / 100.0
        else:
            value = float(raw)
    except ValueError:
        raise ConfigError(f"cannot parse tolerance {text!r} (want '25%' or '0.25')")
    if value < 0:
        raise ConfigError(f"tolerance must be >= 0, got {text!r}")
    return value


def baseline_path() -> Path:
    return repo_root() / "BENCH_cycletier.json"


def load_baseline(path: Optional[Path] = None) -> Dict[str, Any]:
    resolved = path or baseline_path()
    try:
        return json.loads(resolved.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot load bench baseline {resolved}: {exc}")


def run_fresh(report: Callable[[str], None] = print) -> Dict[str, Any]:
    """Run ``benchmarks/bench_report.py`` fresh, without writing the baseline.

    The benchmarks directory is not an installed package, so the module is
    loaded straight from its file path under the repo root.
    """
    bench_path = repo_root() / "benchmarks" / "bench_report.py"
    spec = importlib.util.spec_from_file_location("repro_bench_report", bench_path)
    if spec is None or spec.loader is None:
        raise ConfigError(f"cannot load bench suite from {bench_path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.run_report(report=report, out_path=None)


@dataclass
class GateCheck:
    """One bench/field comparison and its verdict."""

    bench: str
    check: str
    ok: bool
    note: str


@dataclass
class GateResult:
    ok: bool
    tolerance: float
    checks: List[GateCheck] = field(default_factory=list)

    def failures(self) -> List[GateCheck]:
        return [check for check in self.checks if not check.ok]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.obs.bench_gate/v1",
            "ok": self.ok,
            "tolerance": self.tolerance,
            "checks": [
                {"bench": c.bench, "check": c.check, "ok": c.ok, "note": c.note}
                for c in self.checks
            ],
        }


def compare(
    baseline: Dict[str, Any], fresh: Dict[str, Any], tolerance: float
) -> GateResult:
    """Compare a fresh bench payload against the committed baseline."""
    result = GateResult(ok=True, tolerance=tolerance)

    def add(bench: str, check: str, ok: bool, note: str) -> None:
        result.checks.append(GateCheck(bench, check, ok, note))
        if not ok:
            result.ok = False

    base_benches: Dict[str, Any] = baseline.get("benches", {})
    fresh_benches: Dict[str, Any] = fresh.get("benches", {})

    add(
        "*",
        "fresh_suite_ok",
        bool(fresh.get("ok")),
        "fresh run passed its own equality + speedup gates"
        if fresh.get("ok")
        else "fresh run FAILED its own equality/speedup gates",
    )

    base_schema = baseline.get("schema", 1)
    fresh_schema = fresh.get("schema")
    if fresh_schema is not None:
        add(
            "*",
            "schema",
            base_schema == fresh_schema,
            f"baseline schema {base_schema} matches the suite"
            if base_schema == fresh_schema
            else (
                f"baseline schema {base_schema} is stale (suite emits "
                f"{fresh_schema}) — regenerate BENCH_cycletier.json"
            ),
        )

    for name in sorted(base_benches):
        base = base_benches[name]
        entry = fresh_benches.get(name)
        if entry is None:
            add(name, "present", False, "bench present in baseline but not in fresh run")
            continue
        if base.get("results_identical") and not entry.get("results_identical"):
            add(name, "results_identical", False,
                "fast/naive engines diverged (baseline had them identical)")
        else:
            add(name, "results_identical", True, "engines still agree")
        if entry.get("gated"):
            floor = float(fresh.get("gate_speedup", 0.0))
            speedup = float(entry.get("speedup", 0.0))
            add(
                name,
                "gated_speedup",
                speedup >= floor,
                f"gated bench at {speedup:.2f}x (floor {floor:.1f}x)",
            )
        base_wall = base.get("wall_fast_s")
        fresh_wall = entry.get("wall_fast_s")
        if not base_wall or fresh_wall is None:
            add(name, "wall_fast_s", True, "no comparable wall-clock in baseline")
            continue
        limit = base_wall * (1.0 + tolerance)
        ratio = fresh_wall / base_wall
        add(
            name,
            "wall_fast_s",
            fresh_wall <= limit,
            f"fast-engine wall {fresh_wall:.3f}s vs baseline {base_wall:.3f}s "
            f"({ratio:.2f}x, limit {1.0 + tolerance:.2f}x)",
        )

    for name in sorted(fresh_benches):
        if name not in base_benches:
            add(name, "present", True, "new bench (no baseline yet) — informational")
    return result


def run_gate(
    tolerance: float = DEFAULT_TOLERANCE,
    baseline: Optional[Path] = None,
    report: Callable[[str], None] = print,
    json_out: Optional[Path] = None,
) -> int:
    """The ``repro bench-gate`` entry point; returns a process exit code."""
    try:
        base = load_baseline(baseline)
    except ConfigError as exc:
        report(f"bench-gate: {exc}")
        return EXIT_NO_BASELINE
    meta = base.get("meta")
    if meta:
        report(
            f"baseline: git {str(meta.get('git_sha'))[:12]} "
            f"python {meta.get('python')} (schema {base.get('schema', 1)})"
        )
        if meta.get("git_dirty"):
            report(
                "bench-gate: WARNING baseline was recorded from a dirty tree "
                "(meta.git_dirty) — its sha does not identify the measured "
                "code; regenerate BENCH_cycletier.json from a clean checkout"
            )
    else:
        report("baseline: schema 1 (no provenance metadata)")
    fresh = run_fresh(report=report)
    if fresh.get("schema") is not None and base.get("schema", 1) != fresh.get("schema"):
        report(
            "bench-gate: WARNING baseline schema "
            f"{base.get('schema', 1)} does not match the suite's schema "
            f"{fresh.get('schema')} — the bench set or field meanings "
            "changed under the baseline; regenerate BENCH_cycletier.json"
        )
    verdict = compare(base, fresh, tolerance)
    for check in verdict.checks:
        marker = "PASS" if check.ok else "FAIL"
        report(f"  {marker}  {check.bench}/{check.check}: {check.note}")
    if json_out is not None:
        json_out.write_text(json.dumps(verdict.as_dict(), indent=2, sort_keys=True) + "\n")
        report(f"wrote {json_out}")
    if verdict.ok:
        report(f"bench-gate: OK within {tolerance:.0%} tolerance")
        return EXIT_OK
    failures = ", ".join(f"{c.bench}/{c.check}" for c in verdict.failures())
    report(f"bench-gate: REGRESSION ({failures})")
    return EXIT_REGRESSION
