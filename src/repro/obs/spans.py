"""The structured tracer: typed span & instant events over a bounded ring.

A :class:`Tracer` collects :class:`~repro.obs.events.InstantEvent` and
:class:`~repro.obs.events.SpanEvent` records.  Timestamps are **simulated
cycles** supplied by the caller (``Core.cycle`` / ``Simulator.now``) — the
tracer never reads a wall clock, so traces are byte-identical between the
naive and fast engines and across hosts.  Host-side wall-clock profiling
lives in :mod:`repro.obs.regress` (the perf gate), which the detlint layer
allowlist covers; this module must stay DET-clean.

Storage is a :class:`~repro.obs.ring.RingBuffer` so week-long runs cannot
exhaust memory: the newest ``max_events`` records are kept and the dropped
count is reported in exports.
"""

from __future__ import annotations

from typing import Any, List, Optional, Union

from repro.common.errors import SimulationError
from repro.obs.events import InstantEvent, SpanEvent
from repro.obs.ring import RingBuffer

#: Default bound on the global tracer (~a few hundred MB worst case is the
#: alternative; 1Mi events is plenty for any one observed run).
DEFAULT_MAX_EVENTS = 1 << 20

TraceEventType = Union[InstantEvent, SpanEvent]


class SpanHandle:
    """An open span; :meth:`end` stamps the duration and records it."""

    __slots__ = ("_tracer", "ts", "name", "track", "category", "args", "_closed")

    def __init__(self, tracer: "Tracer", ts: float, name: str, track: str,
                 category: str, args: dict) -> None:
        self._tracer = tracer
        self.ts = ts
        self.name = name
        self.track = track
        self.category = category
        self.args = args
        self._closed = False

    def end(self, ts: float, **extra_args: Any) -> SpanEvent:
        if self._closed:
            raise SimulationError(f"span {self.name!r} ended twice")
        if ts < self.ts:
            raise SimulationError(
                f"span {self.name!r} ends at {ts} before it began at {self.ts}"
            )
        self._closed = True
        if extra_args:
            self.args = {**self.args, **extra_args}
        event = SpanEvent(
            ts=self.ts, dur=ts - self.ts, name=self.name, track=self.track,
            category=self.category, args=self.args,
        )
        self._tracer._ring.append(event)
        return event


class Tracer:
    """Collects structured trace events with deterministic timestamps."""

    __slots__ = ("_ring",)

    def __init__(self, max_events: Optional[int] = DEFAULT_MAX_EVENTS) -> None:
        self._ring: RingBuffer[TraceEventType] = RingBuffer(max_events)

    # -- recording ----------------------------------------------------------

    def instant(self, ts: float, name: str, track: str, category: str = "",
                **args: Any) -> None:
        """Record a zero-duration event at simulated time ``ts``."""
        self._ring.append(InstantEvent(ts=ts, name=name, track=track,
                                       category=category, args=args))

    def complete(self, ts: float, dur: float, name: str, track: str,
                 category: str = "", **args: Any) -> None:
        """Record a span whose duration is already known."""
        if dur < 0:
            raise SimulationError(f"span {name!r} has negative duration {dur}")
        self._ring.append(SpanEvent(ts=ts, dur=dur, name=name, track=track,
                                    category=category, args=args))

    def begin(self, ts: float, name: str, track: str, category: str = "",
              **args: Any) -> SpanHandle:
        """Open a span; call ``.end(ts)`` on the handle to record it."""
        return SpanHandle(self, ts, name, track, category, args)

    # -- reading ------------------------------------------------------------

    @property
    def max_events(self) -> Optional[int]:
        return self._ring.max_events

    @property
    def dropped(self) -> int:
        return self._ring.dropped

    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> List[TraceEventType]:
        """Retained events, oldest first (spans sort at their start time)."""
        return sorted(self._ring.snapshot(), key=lambda e: e.ts)

    def of_name(self, name: str) -> List[TraceEventType]:
        return [event for event in self._ring if event.name == name]

    def clear(self) -> None:
        self._ring.clear()
