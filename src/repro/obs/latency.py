"""Interrupt delivery-latency decomposition (the Table 2 stage structure).

Walks a cycle-tier trace and splits every delivery into the paper's
stages, pairing each stage-start with the first stage-end at or after it
(one delivery outstanding at a time — the regime every experiment here
runs in):

UIPI deliveries (sender core -> receiver core):

====================  ===================================================
``send_to_arrival``    ``senduipi_start`` (sender) -> ``ipi_arrival``
                       (receiver): microcode + ICR write + wire transit
``arrival_to_inject``  ``ipi_arrival`` -> ``inject``: recognition —
                       flush/drain/track until the core takes the event
``inject_to_handler``  ``inject`` -> ``handler_fetch``: delivery
                       micro-ops through to handler entry
``total``              ``senduipi_start`` -> ``handler_fetch``
====================  ===================================================

KB-timer deliveries are local, so the wire stage disappears:
``fire_to_inject`` (``kb_timer_fire`` -> ``inject``),
``inject_to_handler``, and ``total`` (``kb_timer_fire`` ->
``handler_fetch``).

The samples feed :class:`~repro.obs.hist.LatencyHistogram` instances in a
:class:`~repro.obs.registry.MetricsRegistry` under
``delivery.<strategy>.<stage>`` — the p50 of ``delivery.*.total`` is the
number the Figure 4 ordering check reads.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.obs.registry import MetricsRegistry

#: Stage names in report order.
UIPI_STAGES = ("send_to_arrival", "arrival_to_inject", "inject_to_handler", "total")
TIMER_STAGES = ("fire_to_inject", "inject_to_handler", "total")


def pair_latencies(starts: List[float], ends: List[float]) -> List[float]:
    """Pair each start with the first end at or after it.

    Both lists must be in time order.  Models one outstanding delivery at
    a time: an end is consumed by the earliest unmatched start before it.
    """
    latencies: List[float] = []
    end_iter = iter(ends)
    end = next(end_iter, None)
    for start in starts:
        while end is not None and end < start:
            end = next(end_iter, None)
        if end is None:
            break
        latencies.append(end - start)
    return latencies


def _times(events: Iterable[Any], kind: str, core: Optional[int]) -> List[float]:
    return [
        event.time
        for event in events
        if event.kind == kind
        and (core is None or event.detail.get("core") == core)
    ]


def uipi_delivery_stages(
    events: Iterable[Any], sender_core: int, receiver_core: int
) -> Dict[str, List[float]]:
    """Per-stage latency samples of every UIPI delivery in the trace."""
    events = list(events)
    sends = _times(events, "senduipi_start", sender_core)
    arrivals = _times(events, "ipi_arrival", receiver_core)
    injects = _times(events, "inject", receiver_core)
    handlers = _times(events, "handler_fetch", receiver_core)
    return {
        "send_to_arrival": pair_latencies(sends, arrivals),
        "arrival_to_inject": pair_latencies(arrivals, injects),
        "inject_to_handler": pair_latencies(injects, handlers),
        "total": pair_latencies(sends, handlers),
    }


def timer_delivery_stages(
    events: Iterable[Any], receiver_core: int
) -> Dict[str, List[float]]:
    """Per-stage latency samples of every KB-timer delivery in the trace."""
    events = list(events)
    fires = _times(events, "kb_timer_fire", receiver_core)
    injects = _times(events, "inject", receiver_core)
    handlers = _times(events, "handler_fetch", receiver_core)
    return {
        "fire_to_inject": pair_latencies(fires, injects),
        "inject_to_handler": pair_latencies(injects, handlers),
        "total": pair_latencies(fires, handlers),
    }


def record_stages(
    registry: MetricsRegistry, prefix: str, stages: Dict[str, List[float]]
) -> None:
    """Feed stage samples into ``<prefix>.<stage>`` histograms."""
    for stage in sorted(stages):
        histogram = registry.histogram(f"{prefix}.{stage}")
        histogram.record_many(stages[stage])
