"""HDR-style log-bucketed latency histograms.

Values (non-negative; cycles, microseconds, counts) are binned into
buckets whose width grows geometrically: the first ``2**sub_bits`` buckets
are exact (width 1), then every octave is split into ``2**sub_bits``
sub-buckets, bounding the relative quantization error at ``2**-sub_bits``
(~6% at the default ``sub_bits=4``, ~1.5% at 6) while keeping the bucket
count logarithmic in the value range.  Exact ``min``/``max``/``count`` and
a float ``sum`` ride alongside the buckets, so the percentile estimator can
clamp into the observed range — empty and single-sample inputs behave
exactly (see :meth:`LatencyHistogram.percentile`).

Everything is deterministic: bucket arithmetic is integer-only, percentile
walks buckets in index order, and ``as_dict`` emits sorted keys.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigError

#: Default sub-bucket resolution: 16 sub-buckets per octave (~6% error).
DEFAULT_SUB_BITS = 4

#: Percentiles reported by :meth:`LatencyHistogram.summary`.
SUMMARY_PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 50.0),
    ("p90", 90.0),
    ("p99", 99.0),
    ("p999", 99.9),
)


class LatencyHistogram:
    """Log-bucketed histogram with percentile summaries."""

    __slots__ = ("sub_bits", "count", "sum", "min", "max", "_counts")

    def __init__(self, sub_bits: int = DEFAULT_SUB_BITS) -> None:
        if not 1 <= sub_bits <= 12:
            raise ConfigError(f"sub_bits must be in [1, 12], got {sub_bits}")
        self.sub_bits = sub_bits
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: bucket index -> count (sparse; traces usually span few octaves).
        self._counts: Dict[int, int] = {}

    # -- bucket arithmetic ---------------------------------------------------

    def bucket_index(self, value: float) -> int:
        """The bucket a value falls into (values quantize to integers)."""
        v = int(value)
        if v < 0:
            raise ConfigError(f"latency histogram values must be >= 0, got {value}")
        sub_bits = self.sub_bits
        if v < (1 << sub_bits):
            return v  # linear range: exact
        msb = v.bit_length() - 1
        shift = msb - sub_bits
        return ((msb - sub_bits + 1) << sub_bits) + ((v >> shift) - (1 << sub_bits))

    def bucket_bounds(self, index: int) -> Tuple[int, int]:
        """Inclusive ``[lower, upper]`` integer value range of a bucket."""
        sub_bits = self.sub_bits
        if index < (1 << sub_bits):
            return index, index
        octave = (index >> sub_bits) + sub_bits - 1
        sub = index & ((1 << sub_bits) - 1)
        shift = octave - sub_bits
        lower = ((1 << sub_bits) + sub) << shift
        upper = lower + (1 << shift) - 1
        return lower, upper

    # -- recording -----------------------------------------------------------

    def record(self, value: float) -> None:
        if value != value:  # NaN would silently poison min/max
            raise ConfigError("cannot record NaN into a latency histogram")
        index = self.bucket_index(value)
        self._counts[index] = self._counts.get(index, 0) + 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram (same ``sub_bits``)."""
        if other.sub_bits != self.sub_bits:
            raise ConfigError(
                f"cannot merge histograms with sub_bits {other.sub_bits} != {self.sub_bits}"
            )
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    @classmethod
    def merge_many(
        cls, histograms: Iterable["LatencyHistogram"], sub_bits: Optional[int] = None
    ) -> "LatencyHistogram":
        """Fold an iterable of histograms into one fresh histogram.

        Linear in total occupied buckets — use this instead of repeatedly
        merging into a growing accumulator when combining thousands of
        shard histograms (the repeated-merge pattern re-walks the
        accumulator's buckets each time).  ``sub_bits`` defaults to the
        first histogram's resolution; an empty iterable needs it explicit
        (or falls back to :data:`DEFAULT_SUB_BITS`).
        """
        merged: Optional[LatencyHistogram] = None
        if sub_bits is not None:
            merged = cls(sub_bits)
        for hist in histograms:
            if merged is None:
                merged = cls(hist.sub_bits)
            merged.merge(hist)
        return merged if merged is not None else cls(DEFAULT_SUB_BITS)

    # -- exact state (shard-result transport) --------------------------------

    def to_state(self) -> Dict[str, Any]:
        """Exact, JSON-safe state: :meth:`from_state` round-trips losslessly.

        Unlike :meth:`as_dict` (a human-facing summary), this preserves the
        raw bucket indices and the float ``sum``, so a histogram can cross a
        process boundary (e.g. inside a cluster shard result) and merge into
        cluster-wide percentiles without re-quantization drift.
        """
        return {
            "sub_bits": self.sub_bits,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "counts": {str(index): self._counts[index] for index in sorted(self._counts)},
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`to_state` output (validating)."""
        if not isinstance(state, dict):
            raise ConfigError(f"histogram state must be a dict, got {type(state).__name__}")
        try:
            sub_bits = state["sub_bits"]
            count = state["count"]
            total = state["sum"]
            lo = state["min"]
            hi = state["max"]
            counts = state["counts"]
        except KeyError as exc:
            raise ConfigError(f"histogram state missing key {exc}") from exc
        hist = cls(sub_bits)
        if not isinstance(counts, dict):
            raise ConfigError("histogram state 'counts' must be a dict")
        bucket_total = 0
        for key in counts:
            n = counts[key]
            index = int(key)
            if index < 0 or not isinstance(n, int) or isinstance(n, bool) or n <= 0:
                raise ConfigError(f"invalid histogram bucket {key!r}: {n!r}")
            hist._counts[index] = n
            bucket_total += n
        if bucket_total != count:
            raise ConfigError(
                f"histogram state count {count} != bucket total {bucket_total}"
            )
        if count and (lo is None or hi is None):
            raise ConfigError("non-empty histogram state needs min and max")
        hist.count = count
        hist.sum = float(total)
        hist.min = None if lo is None else float(lo)
        hist.max = None if hi is None else float(hi)
        return hist

    # -- reading -------------------------------------------------------------

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def percentile(self, p: float) -> Optional[float]:
        """Value at percentile ``p`` (0 < p <= 100); None when empty.

        Walks buckets in order to the first whose cumulative count reaches
        ``ceil(p/100 * count)`` and returns that bucket's upper bound,
        clamped into ``[min, max]`` — so percentiles of a single sample are
        that sample exactly, and no estimate can leave the observed range.
        """
        if not 0 < p <= 100:
            raise ConfigError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return None
        rank = math.ceil(self.count * p / 100.0)
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= rank:
                _, upper = self.bucket_bounds(index)
                assert self.min is not None and self.max is not None
                return min(max(float(upper), self.min), self.max)
        raise AssertionError("bucket counts do not sum to count")  # pragma: no cover

    def summary(self) -> Dict[str, Any]:
        """count/min/mean/percentiles/max, ready for the metrics JSON."""
        out: Dict[str, Any] = {
            "count": self.count,
            "min": self.min,
            "mean": self.mean,
            "max": self.max,
        }
        for name, p in SUMMARY_PERCENTILES:
            out[name] = self.percentile(p)
        return out

    def nonzero_buckets(self) -> List[Tuple[int, int, int]]:
        """Sorted ``(lower, upper, count)`` triples of occupied buckets."""
        out = []
        for index in sorted(self._counts):
            lower, upper = self.bucket_bounds(index)
            out.append((lower, upper, self._counts[index]))
        return out

    def as_dict(self) -> Dict[str, Any]:
        payload = self.summary()
        payload["sub_bits"] = self.sub_bits
        payload["buckets"] = [
            {"lower": lower, "upper": upper, "count": count}
            for lower, upper, count in self.nonzero_buckets()
        ]
        return payload
