"""Typed structured-trace events and the track/category taxonomy.

Every observability event carries a **deterministic simulated timestamp**
(cycles of the 2 GHz paper clock — never wall-clock time; see DET001) and a
**track**: the timeline row it renders on in Perfetto.  Track names follow
the entity that emitted the event:

================  =====================================================
``core<N>``        pipeline / delivery events of cycle-tier core N
``apic<N>``        local-APIC message acceptance and IPI wire transit
``timer<N>``       KB-timer and legacy APIC-timer fires on core N
``kernel.sched<N>``context switches and slow-path reposts on core N
``sim.events``     event-tier calendar callbacks
``faults``         injected faults (drop/dup/delay/stall/...)
================  =====================================================

Categories group events for Perfetto filtering (``cat`` in the Chrome
trace-event format).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

# -- categories -------------------------------------------------------------
CAT_DELIVERY = "delivery"  # interrupt recognition / delivery / uiret
CAT_IRQ = "irq"  # APIC message acceptance, IPI wire transit
CAT_TIMER = "timer"  # KB / APIC timer fires
CAT_SCHED = "sched"  # kernel scheduler context switches
CAT_SIM = "sim"  # event-tier calendar callbacks
CAT_FAULT = "fault"  # injected faults
CAT_ENGINE = "engine"  # engine telemetry markers


@dataclass(frozen=True, slots=True)
class InstantEvent:
    """A zero-duration occurrence at simulated time ``ts`` (cycles)."""

    ts: float
    name: str
    track: str
    category: str = ""
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """A duration ``[ts, ts + dur]`` on one track (a Chrome "X" event)."""

    ts: float
    dur: float
    name: str
    track: str
    category: str = ""
    args: Dict[str, Any] = field(default_factory=dict)


# -- legacy TraceRecorder kind -> (track template, category) ----------------
# The cycle-tier ``TraceRecorder`` predates the structured tracer; its flat
# ``kind`` strings map onto tracks here so legacy traces export to the same
# timeline model.  Kinds not listed render on the emitting core's track with
# category "delivery" (every unlisted kind today is a delivery-path marker).
_TIMER_KINDS = frozenset({"kb_timer_fire", "apic_timer_fire"})
_APIC_KINDS = frozenset({"ipi_arrival", "device_intr"})

_KIND_CATEGORY = {
    "ipi_arrival": CAT_IRQ,
    "device_intr": CAT_IRQ,
    "icr_write": CAT_IRQ,
    "kb_timer_fire": CAT_TIMER,
    "apic_timer_fire": CAT_TIMER,
}


def track_for_kind(kind: str, detail: Dict[str, Any]) -> str:
    """The track a legacy trace-recorder event belongs on."""
    core = detail.get("core")
    if core is None:
        return "sim.events"
    if kind in _TIMER_KINDS:
        return f"timer{core}"
    if kind in _APIC_KINDS:
        return f"apic{core}"
    return f"core{core}"


def category_for_kind(kind: str) -> str:
    return _KIND_CATEGORY.get(kind, CAT_DELIVERY)
