"""Central metrics registry: counters, gauges, and latency histograms.

One process-wide :class:`MetricsRegistry` (``repro.obs.METRICS``) gathers
every numeric telemetry stream the simulator produces — engine counters,
fault-injection counters, result-cache stats, per-core pipeline stats —
behind hierarchical dotted names (``core0.rob.squashes``,
``engine.cycles_skipped``, ``faults.dropped``) and a single
``as_dict()``/JSON schema, so ``--metrics-out`` and tests read one shape
instead of four ad-hoc ones.

The registry is *pull*-friendly: subsystems that already keep their own
counters (``EngineCounters``, ``InjectionCounters``, APIC/scheduler stats)
are absorbed via ``absorb_*`` helpers at export time rather than being
rewritten to push into the registry on every increment — the hot paths
stay untouched.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.common.errors import ConfigError
from repro.obs.hist import LatencyHistogram

#: Schema tag stamped into every metrics export.
METRICS_SCHEMA = "repro.obs.metrics/v1"


def _check_name(name: str) -> str:
    if not name or name != name.strip():
        raise ConfigError(f"invalid metric name {name!r}")
    return name


class MetricsRegistry:
    """Hierarchically named counters, gauges, and histograms."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    # -- writing -------------------------------------------------------------

    def inc(self, name: str, delta: int = 1) -> None:
        """Increment counter ``name`` (created at 0 on first use)."""
        _check_name(name)
        self._counters[name] = self._counters.get(name, 0) + delta

    def set_counter(self, name: str, value: int) -> None:
        """Overwrite counter ``name`` — used by the absorb helpers, which
        re-read monotonic source counters at export time."""
        self._counters[_check_name(name)] = int(value)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        self._gauges[_check_name(name)] = value

    def histogram(self, name: str) -> LatencyHistogram:
        """The histogram registered under ``name`` (created on first use)."""
        _check_name(name)
        hist = self._histograms.get(name)
        if hist is None:
            hist = LatencyHistogram()
            self._histograms[name] = hist
        return hist

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        self.histogram(name).record(value)

    def merge_histogram(self, name: str, other: LatencyHistogram) -> None:
        """Fold a pre-built histogram into ``name`` (created on first use
        with ``other``'s resolution) — the merge path cluster aggregation
        uses to publish per-strategy latency under one metrics namespace."""
        _check_name(name)
        hist = self._histograms.get(name)
        if hist is None:
            hist = LatencyHistogram(other.sub_bits)
            self._histograms[name] = hist
        hist.merge(other)

    # -- absorbing existing counter structs ----------------------------------

    def absorb_mapping(self, prefix: str, values: Mapping[str, Any]) -> None:
        """Copy a flat ``{field: number}`` mapping in under ``prefix.``."""
        _check_name(prefix)
        for key in sorted(values):
            value = values[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            full = f"{prefix}.{key}"
            if isinstance(value, int):
                self.set_counter(full, value)
            else:
                self.gauge(full, value)

    def absorb_engine_counters(self, counters: Optional[Any] = None) -> None:
        """Pull in :data:`repro.common.counters.GLOBAL_COUNTERS`."""
        if counters is None:
            from repro.common.counters import GLOBAL_COUNTERS
            counters = GLOBAL_COUNTERS
        self.absorb_mapping("engine", counters.as_dict())

    def absorb_injection_counters(self, counters: Any) -> None:
        """Pull in a :class:`repro.faults.injector.InjectionCounters`."""
        self.absorb_mapping("faults", counters.as_dict())

    # -- reading -------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def as_dict(self) -> Dict[str, Any]:
        """The full registry in the ``repro.obs.metrics/v1`` shape."""
        return {
            "schema": METRICS_SCHEMA,
            "counters": {name: self._counters[name] for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name] for name in sorted(self._gauges)},
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
