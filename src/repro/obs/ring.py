"""Bounded ring-buffer event storage.

Long traced runs used to grow ``TraceRecorder.events`` without limit; every
event store in the observability layer now goes through a :class:`RingBuffer`
that either grows unbounded (``max_events=None``, the legacy behaviour tests
rely on) or keeps only the newest ``max_events`` records, dropping from the
oldest end.  Dropped counts are tracked so exports can say "this trace is a
window", never silently pretend completeness.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, List, Optional, TypeVar

from repro.common.errors import ConfigError

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """Append-only event store with an optional size bound.

    ``max_events=None`` grows without limit; ``max_events=N`` keeps the
    newest N items (oldest are evicted first, FIFO).  ``appended`` counts
    every append ever made, so ``dropped = appended - len(buffer)``.
    """

    __slots__ = ("max_events", "appended", "_items")

    def __init__(self, max_events: Optional[int] = None) -> None:
        if max_events is not None and max_events < 1:
            raise ConfigError(f"max_events must be None or >= 1, got {max_events}")
        self.max_events = max_events
        self.appended = 0
        self._items: Deque[T] = deque(maxlen=max_events)

    def append(self, item: T) -> None:
        self.appended += 1
        self._items.append(item)

    def extend(self, items) -> None:
        for item in items:
            self.append(item)

    @property
    def dropped(self) -> int:
        """How many of the appended items were evicted by the bound."""
        return self.appended - len(self._items)

    def snapshot(self) -> List[T]:
        """The retained items, oldest first, as a fresh list."""
        return list(self._items)

    def clear(self) -> None:
        self._items.clear()
        self.appended = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)
