"""repro.obs — unified observability: tracing, metrics, latency, gating.

The subsystem is **off by default** and designed to cost one module-level
boolean check when disabled (the same zero-cost-when-off discipline as the
``REPRO_FAST`` engine flag).  Hot paths guard every emission with::

    from repro import obs as _obs
    ...
    if _obs.enabled:
        _obs.TRACER.instant(self.cycle, "apic.accept", f"apic{self.apic_id}")

Call :func:`enable` / :func:`disable` to flip collection; the CLI does this
when ``--trace-out`` / ``--metrics-out`` are given.  Timestamps are always
simulated cycles — the tracer itself never reads a wall clock (detlint
DET001 still applies to everything except the host-side perf gate in
:mod:`repro.obs.regress`).

This package ``__init__`` only re-exports the dependency-free core
(ring / events / spans / hist / registry).  The exporters that reach into
the simulator (:mod:`repro.obs.chrometrace`, :mod:`repro.obs.latency`,
:mod:`repro.obs.observe`, :mod:`repro.obs.regress`) are imported explicitly
by their callers to keep import cycles impossible.
"""

from __future__ import annotations

from repro.obs.events import (
    CAT_DELIVERY,
    CAT_ENGINE,
    CAT_FAULT,
    CAT_IRQ,
    CAT_SCHED,
    CAT_SIM,
    CAT_TIMER,
    InstantEvent,
    SpanEvent,
)
from repro.obs.hist import LatencyHistogram
from repro.obs.registry import METRICS_SCHEMA, MetricsRegistry
from repro.obs.ring import RingBuffer
from repro.obs.spans import DEFAULT_MAX_EVENTS, SpanHandle, Tracer

#: Master switch.  Hot paths check this one attribute and nothing else.
enabled: bool = False

#: Process-global tracer and metrics registry.  Instrumentation sites write
#: here (guarded by ``enabled``); exporters snapshot from here.
TRACER = Tracer()
METRICS = MetricsRegistry()


def enable(max_events: int | None = DEFAULT_MAX_EVENTS) -> None:
    """Turn on collection with a fresh tracer bounded at ``max_events``."""
    global enabled, TRACER
    TRACER = Tracer(max_events)
    METRICS.clear()
    enabled = True


def disable() -> None:
    """Turn collection off.  Already-collected events stay readable."""
    global enabled
    enabled = False


__all__ = [
    "CAT_DELIVERY",
    "CAT_ENGINE",
    "CAT_FAULT",
    "CAT_IRQ",
    "CAT_SCHED",
    "CAT_SIM",
    "CAT_TIMER",
    "DEFAULT_MAX_EVENTS",
    "InstantEvent",
    "LatencyHistogram",
    "METRICS",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "RingBuffer",
    "SpanEvent",
    "SpanHandle",
    "TRACER",
    "Tracer",
    "disable",
    "enable",
    "enabled",
]
