"""The canonical observed experiment pass behind ``--trace-out``.

Figure-level experiments replay through the persistent result cache and
the parallel sweep engine, so their inner runs have no live trace to
export.  When the CLI is asked for ``--trace-out`` / ``--metrics-out`` it
therefore runs this module's canonical instrumented pass alongside the
experiment: one traced, observability-enabled cycle-tier run per delivery
strategy (flush UIPI, tracked UIPI, tracked KB timer — the Figure 4
trio), each becoming one Chrome-trace process group and one
``delivery.<strategy>.*`` histogram family in the metrics registry.

The pass always bypasses the result cache (``trace=True`` runs are never
cached) and enables/disables the global tracer around itself, so it
perturbs neither cached experiment results nor the engine-equality
invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import obs
from repro.apps import microbench as mb
from repro.cpu.delivery import FlushStrategy, TrackedStrategy
from repro.experiments import cycletier
from repro.obs.chrometrace import TraceGroup, from_recorder
from repro.obs.latency import (
    record_stages,
    timer_delivery_stages,
    uipi_delivery_stages,
)

#: Strategy labels in Figure 4 order: expected total-latency medians obey
#: flush > tracked IPI > tracked KB timer.
STRATEGY_LABELS = ("uipi_flush", "uipi_tracked", "kb_timer_tracked")


@dataclass
class ObservedRun:
    """Everything one observed pass produced, ready for the exporters."""

    groups: List[TraceGroup] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: p50 of ``delivery.<label>.total`` per strategy label (None if empty).
    medians: Dict[str, Optional[float]] = field(default_factory=dict)

    @property
    def ordering_ok(self) -> bool:
        """Do the medians reproduce flush > tracked > timer (Figure 4)?"""
        flush = self.medians.get("uipi_flush")
        tracked = self.medians.get("uipi_tracked")
        timer = self.medians.get("kb_timer_tracked")
        if flush is None or tracked is None or timer is None:
            return False
        return flush > tracked > timer


#: Observed-pass interrupt interval: shorter than the experiments' 5 us
#: quantum so a quick run still lands a dozen deliveries per strategy.
OBSERVE_INTERVAL = 2_500


def run_observed(
    full: bool = False,
    max_events: Optional[int] = obs.DEFAULT_MAX_EVENTS,
    interval: int = OBSERVE_INTERVAL,
) -> ObservedRun:
    """Run the per-strategy instrumented trio and collect traces + metrics."""
    iterations = 120_000 if full else 30_000
    obs.enable(max_events)
    result = ObservedRun()
    try:
        for label in STRATEGY_LABELS:
            obs.TRACER.clear()
            workload = mb.make_count_loop(iterations)
            if label == "uipi_flush":
                run = cycletier.run_with_uipi_timer(
                    workload, FlushStrategy(), interval=interval, trace=True
                )
                stages = uipi_delivery_stages(
                    run.system.trace.events, sender_core=1, receiver_core=0
                )
            elif label == "uipi_tracked":
                run = cycletier.run_with_uipi_timer(
                    workload, TrackedStrategy(), interval=interval, trace=True
                )
                stages = uipi_delivery_stages(
                    run.system.trace.events, sender_core=1, receiver_core=0
                )
            else:
                run = cycletier.run_with_kb_timer(
                    workload, interval=interval, trace=True
                )
                stages = timer_delivery_stages(
                    run.system.trace.events, receiver_core=0
                )

            record_stages(obs.METRICS, f"delivery.{label}", stages)
            obs.METRICS.set_counter(f"run.{label}.cycles", run.cycles)
            obs.METRICS.set_counter(
                f"run.{label}.interrupts_delivered", run.interrupts_delivered
            )
            obs.METRICS.set_counter(
                f"run.{label}.committed_instructions", run.committed_instructions
            )
            if run.stats is not None:
                obs.METRICS.absorb_mapping(
                    f"run.{label}.core0", dict(run.stats.__dict__)
                )

            events = from_recorder(run.system.trace.events) + obs.TRACER.events()
            result.groups.append(
                TraceGroup(
                    name=label,
                    events=events,
                    dropped=obs.TRACER.dropped + run.system.trace.dropped,
                )
            )
            total = obs.METRICS.histogram(f"delivery.{label}.total")
            result.medians[label] = total.percentile(50.0)

        obs.METRICS.absorb_engine_counters()
        result.metrics = obs.METRICS.as_dict()
    finally:
        obs.disable()
    return result
