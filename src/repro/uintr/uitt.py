"""The User Interrupt Target Table (UITT) — §3.1.

A per-process table mapping a small integer index (the ``senduipi`` operand)
to a ``(UPID pointer, user vector)`` tuple.  The presence of a UPID pointer
in a process's UITT is the access-control grant: it implicitly permits that
process to send user interrupts to the thread owning the UPID.

Layout in shared memory (16 bytes per entry):

    word 0: UPID address
    word 1: user vector (6 bits)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - annotation only (see upid.py: a
    # runtime import re-creates the uintr <-> cpu import cycle).
    from repro.cpu.cache import SharedMemory

UITT_ENTRY_BYTES = 16
MAX_USER_VECTOR = 63


@dataclass(frozen=True)
class UITTEntry:
    """One decoded UITT entry."""

    upid_addr: int
    user_vector: int

    def __post_init__(self) -> None:
        if not 0 <= self.user_vector <= MAX_USER_VECTOR:
            raise ConfigError(f"user vector must be 6 bits, got {self.user_vector}")


class UITT:
    """A view of a UITT at ``base_addr`` in shared memory.

    The kernel (``register_sender``) appends entries; ``senduipi`` microcode
    reads them by index.
    """

    def __init__(self, memory: SharedMemory, base_addr: int, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ConfigError("UITT capacity must be positive")
        self.memory = memory
        self.base_addr = base_addr
        self.capacity = capacity
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def entry_addr(self, index: int) -> int:
        if not 0 <= index < self.capacity:
            raise ConfigError(f"UITT index out of range: {index}")
        return self.base_addr + index * UITT_ENTRY_BYTES

    def append(self, upid_addr: int, user_vector: int) -> int:
        """Add an entry (kernel-side ``register_sender``); return its index."""
        if self._count >= self.capacity:
            raise ConfigError("UITT is full")
        entry = UITTEntry(upid_addr=upid_addr, user_vector=user_vector)
        index = self._count
        addr = self.entry_addr(index)
        self.memory.write(addr, entry.upid_addr)
        self.memory.write(addr + 8, entry.user_vector)
        self._count += 1
        return index

    def read(self, index: int) -> UITTEntry:
        """Decode the entry at ``index`` from memory."""
        if not 0 <= index < self._count:
            raise ConfigError(f"UITT index {index} not registered (count={self._count})")
        addr = self.entry_addr(index)
        return UITTEntry(
            upid_addr=self.memory.read(addr),
            user_vector=self.memory.read(addr + 8),
        )
