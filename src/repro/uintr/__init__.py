"""Intel UIPI architectural model (§3): UPID, UITT, local APIC, routing.

These structures are shared by both simulation tiers: the cycle tier reads
and writes UPIDs through its cache hierarchy (so the coherence costs of §3.3
appear), while the event tier manipulates them directly with calibrated
costs.
"""

from repro.uintr.upid import UPID, UPID_BYTES
from repro.uintr.uitt import UITTEntry, UITT, UITT_ENTRY_BYTES
from repro.uintr.apic import LocalApic, ApicBus, PendingInterrupt, InterruptKind

__all__ = [
    "UPID",
    "UPID_BYTES",
    "UITTEntry",
    "UITT",
    "UITT_ENTRY_BYTES",
    "LocalApic",
    "ApicBus",
    "PendingInterrupt",
    "InterruptKind",
]
