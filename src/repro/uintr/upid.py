"""The User Posted Interrupt Descriptor (UPID) — Table 1.

A UPID is a 128-bit in-memory descriptor, one per receiver thread:

    bits 0:0    ON    outstanding notification
    bits 1:1    SN    suppressed notification
    bits 23:16  NV    notification vector (the conventional IPI vector)
    bits 63:32  NDST  APIC ID of the core the thread is running on
    bits 127:64 PIR   posted interrupt requests (one bit per user vector)

We store it as two 64-bit words in :class:`repro.cpu.cache.SharedMemory`:
word 0 holds ON/SN/NV/NDST, word 1 holds the PIR.  The class is a *view*
over shared memory, so cycle-tier microcode and event-tier kernel code
manipulate the same bits the tests inspect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common import bitfield

if TYPE_CHECKING:  # pragma: no cover - annotation only; a runtime import
    # would make ``import repro.uintr`` fail unless repro.cpu was imported
    # first (upid -> cpu.cache -> cpu.__init__ -> cpu.core -> upid cycle).
    from repro.cpu.cache import SharedMemory

#: Size of one UPID in bytes (two 64-bit words).
UPID_BYTES = 16

ON_BIT = 0
SN_BIT = 1
NV_LOW, NV_HIGH = 16, 23
NDST_LOW, NDST_HIGH = 32, 63


@dataclass(slots=True)
class UPID:
    """A view of one UPID at ``addr`` in ``memory``."""

    memory: SharedMemory
    addr: int

    # -- word 0: status ---------------------------------------------------
    def _status(self) -> int:
        return self.memory.read(self.addr)

    def _set_status(self, value: int, core_id=None) -> None:
        self.memory.write(self.addr, value, core_id=core_id)

    @property
    def outstanding(self) -> bool:
        """ON — a notification is outstanding for one or more user interrupts."""
        return bitfield.test_bit(self._status(), ON_BIT)

    def set_outstanding(self, value: bool, core_id=None) -> None:
        status = self._status()
        status = bitfield.set_bit(status, ON_BIT) if value else bitfield.clear_bit(status, ON_BIT)
        self._set_status(status, core_id=core_id)

    @property
    def suppressed(self) -> bool:
        """SN — senders should avoid sending a notification IPI."""
        return bitfield.test_bit(self._status(), SN_BIT)

    def set_suppressed(self, value: bool, core_id=None) -> None:
        status = self._status()
        status = bitfield.set_bit(status, SN_BIT) if value else bitfield.clear_bit(status, SN_BIT)
        self._set_status(status, core_id=core_id)

    @property
    def notification_vector(self) -> int:
        """NV — the conventional interrupt vector used for UIPI notification."""
        return bitfield.get_bits(self._status(), NV_LOW, NV_HIGH)

    def set_notification_vector(self, vector: int, core_id=None) -> None:
        self._set_status(
            bitfield.set_bits(self._status(), NV_LOW, NV_HIGH, vector), core_id=core_id
        )

    @property
    def notification_destination(self) -> int:
        """NDST — APIC ID of the core the receiver thread is running on."""
        return bitfield.get_bits(self._status(), NDST_LOW, NDST_HIGH)

    def set_notification_destination(self, apic_id: int, core_id=None) -> None:
        self._set_status(
            bitfield.set_bits(self._status(), NDST_LOW, NDST_HIGH, apic_id), core_id=core_id
        )

    # -- word 1: PIR -------------------------------------------------------
    @property
    def pir_addr(self) -> int:
        return self.addr + 8

    @property
    def pir(self) -> int:
        """Posted interrupt requests — one bit per 6-bit user vector."""
        return self.memory.read(self.pir_addr)

    def post_vector(self, user_vector: int, core_id=None) -> None:
        """Set the PIR bit for ``user_vector`` and the ON bit (sender side)."""
        if not 0 <= user_vector < 64:
            raise ValueError(f"user vector must be a 6-bit value, got {user_vector}")
        self.memory.write(self.pir_addr, bitfield.set_bit(self.pir, user_vector), core_id=core_id)
        self.set_outstanding(True, core_id=core_id)

    def take_pir(self, core_id=None) -> int:
        """Atomically read-and-clear the PIR (receiver notification processing)."""
        value = self.pir
        self.memory.write(self.pir_addr, 0, core_id=core_id)
        return value

    def clear(self, core_id=None) -> None:
        self._set_status(0, core_id=core_id)
        self.memory.write(self.pir_addr, 0, core_id=core_id)
