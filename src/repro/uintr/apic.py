"""Local APIC and the inter-APIC bus (§3.3 steps 2-3, §4.5 extensions).

The :class:`LocalApic` accepts interrupt messages (conventional vectors) and
queues them as :class:`PendingInterrupt` records for the core.  The xUI
interrupt-forwarding extension (§4.5) adds the 256-bit ``forwarding_enabled``
and ``forwarded_active`` registers: a device interrupt arriving on a vector
whose ``forwarding_enabled`` bit is set becomes a *user* interrupt — on the
fast path (bit also set in ``forwarded_active``) it is delivered directly to
the running thread; otherwise the APIC reports a slow-path interrupt for the
kernel to post into the DUPID.

The :class:`ApicBus` moves IPI messages between APICs with a configurable
wire latency, using whatever scheduler the owning tier provides (global
cycle counter for the cycle tier, event calendar for the event tier).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, Dict, List, Optional

from repro import obs as _obs
from repro.common import bitfield
from repro.common.errors import ConfigError, SimulationError


class InterruptKind(Enum):
    """How an interrupt reached the core — determines the microcode path.

    UIPI notifications need notification processing (UPID access) before
    delivery; KB-timer and forwarded-device interrupts go straight to
    delivery (§4.3, §4.5).  KERNEL interrupts take the conventional path.
    """

    UIPI = "uipi"
    TIMER = "timer"
    DEVICE = "device"
    KERNEL = "kernel"


@dataclass(frozen=True, slots=True)
class PendingInterrupt:
    """An interrupt accepted by the local APIC, waiting for the core."""

    vector: int
    kind: InterruptKind
    arrival_time: float
    user_vector: Optional[int] = None


class LocalApic:
    """One core's local APIC with the xUI forwarding extension."""

    __slots__ = (
        "apic_id",
        "uipi_notification_vector",
        "_pending",
        "forwarding_enabled",
        "forwarded_active",
        "forward_user_vector",
        "slow_path_queue",
        "kernel_queue",
        "_extended_channels",
        "accepted",
        "forwarded_fast",
        "forwarded_slow",
        "fault_interceptor",
        "faults_dropped",
        "user_queued",
    )

    def __init__(self, apic_id: int, uipi_notification_vector: int = 0xEC) -> None:
        self.apic_id = apic_id
        #: UINV — the conventional vector that marks UIPI notifications.
        self.uipi_notification_vector = uipi_notification_vector
        self._pending: Deque[PendingInterrupt] = deque()
        # xUI interrupt forwarding (§4.5): 256-bit registers, one bit/vector.
        self.forwarding_enabled = 0
        self.forwarded_active = 0
        #: vector -> user vector assigned at forwarding registration.
        self.forward_user_vector: Dict[int, int] = {}
        #: Slow-path forwarded interrupts the kernel must post to a DUPID.
        self.slow_path_queue: Deque[PendingInterrupt] = deque()
        #: Conventional (non-user) interrupts, handled by the kernel.
        self.kernel_queue: Deque[PendingInterrupt] = deque()
        #: Extended-format channels: (vector, subchannel) -> user vector.
        self._extended_channels: Dict[tuple, int] = {}
        self.accepted = 0
        self.forwarded_fast = 0
        self.forwarded_slow = 0
        #: Optional fault-injection hook (see ``repro.faults.injector``):
        #: called as ``interceptor(vector, time, kind)`` before a message is
        #: classified; returns None (pass), "drop", "duplicate", or "defer"
        #: (the interceptor took ownership and will redeliver via
        #: :meth:`accept_now`).
        self.fault_interceptor: Optional[Callable[[int, float, Optional[InterruptKind]], Optional[str]]] = None
        #: Messages the interceptor explicitly dropped (never queued).
        self.faults_dropped = 0
        #: User interrupts ever queued for the core (``_pending`` appends) —
        #: the basis of the exactly-once delivery accounting invariant.
        self.user_queued = 0

    # -- kernel-facing configuration ---------------------------------------
    def enable_forwarding(self, vector: int, user_vector: int) -> None:
        """Map conventional ``vector`` to ``user_vector`` for forwarding."""
        if not 0 <= vector < 256:
            raise ConfigError(f"vector must be 8 bits, got {vector}")
        self.forwarding_enabled = bitfield.set_bit(self.forwarding_enabled, vector)
        self.forward_user_vector[vector] = user_vector

    # -- extended message format (§4.5 future work) --------------------------
    def enable_extended_forwarding(
        self, vector: int, subchannel: int, user_vector: int
    ) -> None:
        """Forwarding beyond the 8-bit vector space.

        §4.5 notes the base scheme "is constrained by the limited vector
        space of the underlying core" and suggests "adding a new field to
        the message format, or repurposing unused bits (e.g. the
        clusterID)".  This models that extension: a device interrupt may
        carry a *subchannel* (the repurposed clusterID bits), so one
        conventional vector multiplexes many device/user pairs.
        """
        if not 0 <= vector < 256:
            raise ConfigError(f"vector must be 8 bits, got {vector}")
        if not 0 <= subchannel < (1 << 16):
            raise ConfigError(f"subchannel must fit the repurposed 16 bits, got {subchannel}")
        self.forwarding_enabled = bitfield.set_bit(self.forwarding_enabled, vector)
        self._extended_channels[(vector, subchannel)] = user_vector

    def accept_extended(self, vector: int, subchannel: int, time: float) -> None:
        """Accept a device message carrying the extended channel field."""
        self.accepted += 1
        user_vector = self._extended_channels.get((vector, subchannel))
        if user_vector is None:
            self.kernel_queue.append(
                PendingInterrupt(vector, InterruptKind.KERNEL, time)
            )
            return
        if bitfield.test_bit(self.forwarded_active, vector):
            self.forwarded_fast += 1
            self._queue_user(
                PendingInterrupt(vector, InterruptKind.DEVICE, time, user_vector=user_vector)
            )
        else:
            self.forwarded_slow += 1
            self.slow_path_queue.append(
                PendingInterrupt(vector, InterruptKind.DEVICE, time, user_vector=user_vector)
            )

    @property
    def extended_channel_count(self) -> int:
        return len(self._extended_channels)

    def disable_forwarding(self, vector: int) -> None:
        self.forwarding_enabled = bitfield.clear_bit(self.forwarding_enabled, vector)
        self.forward_user_vector.pop(vector, None)

    def set_active_vectors(self, active_mask: int) -> None:
        """Write ``forwarded_active`` — done by the kernel on context switch
        with the resuming thread's 256-bit vector mask (§4.5)."""
        self.forwarded_active = active_mask

    # -- message acceptance --------------------------------------------------
    def _queue_user(self, pending: PendingInterrupt) -> None:
        """Queue a user interrupt for the core (accounted for invariants)."""
        self.user_queued += 1
        self._pending.append(pending)

    def accept(self, vector: int, time: float, kind: Optional[InterruptKind] = None) -> None:
        """Accept an interrupt message arriving on ``vector`` at ``time``.

        ``kind`` is the physical source; when omitted, the APIC classifies
        by vector: the UINV vector means a UIPI notification, anything else
        is a device/kernel interrupt subject to forwarding.

        A registered ``fault_interceptor`` sees the message first and may
        drop it, duplicate it, or defer it (redelivering via
        :meth:`accept_now`, which bypasses interception).
        """
        interceptor = self.fault_interceptor
        if interceptor is not None:
            action = interceptor(vector, time, kind)
            if action == "drop":
                self.faults_dropped += 1
                return
            if action == "defer":
                return
            if action == "duplicate":
                self.accept_now(vector, time, kind)
        self.accept_now(vector, time, kind)

    def accept_now(self, vector: int, time: float, kind: Optional[InterruptKind] = None) -> None:
        """:meth:`accept` without fault interception (redelivery path)."""
        self.accepted += 1
        if _obs.enabled:
            _obs.TRACER.instant(
                time, "apic.accept", f"apic{self.apic_id}", _obs.CAT_IRQ,
                vector=vector, kind=kind.value if kind is not None else None,
            )
        if kind is None:
            kind = (
                InterruptKind.UIPI
                if vector == self.uipi_notification_vector
                else InterruptKind.DEVICE
            )
        if kind is InterruptKind.UIPI:
            self._queue_user(PendingInterrupt(vector, kind, time))
            return
        if kind in (InterruptKind.DEVICE, InterruptKind.TIMER) and bitfield.test_bit(
            self.forwarding_enabled, vector
        ):
            user_vector = self.forward_user_vector.get(vector, vector & 0x3F)
            if bitfield.test_bit(self.forwarded_active, vector):
                # Fast path: straight to the running user thread.
                self.forwarded_fast += 1
                self._queue_user(
                    PendingInterrupt(vector, InterruptKind.DEVICE, time, user_vector=user_vector)
                )
            else:
                # Slow path: the destination thread is not running; hand the
                # interrupt to the kernel to post into the DUPID.
                self.forwarded_slow += 1
                self.slow_path_queue.append(
                    PendingInterrupt(vector, InterruptKind.DEVICE, time, user_vector=user_vector)
                )
            return
        # Not a user interrupt: conventional delivery to the kernel.
        self.kernel_queue.append(PendingInterrupt(vector, kind, time))

    def raise_timer(self, vector: int, time: float) -> None:
        """The KB-timer fires: queue a user timer interrupt (§4.3)."""
        self._queue_user(PendingInterrupt(vector, InterruptKind.TIMER, time, user_vector=vector))

    def counters_as_dict(self) -> Dict[str, int]:
        """The APIC's telemetry counters, for the metrics registry."""
        return {
            "accepted": self.accepted,
            "forwarded_fast": self.forwarded_fast,
            "forwarded_slow": self.forwarded_slow,
            "faults_dropped": self.faults_dropped,
            "user_queued": self.user_queued,
        }

    # -- core-facing dequeue -------------------------------------------------
    def has_pending(self) -> bool:
        return bool(self._pending)

    def peek(self) -> Optional[PendingInterrupt]:
        return self._pending[0] if self._pending else None

    def take(self) -> PendingInterrupt:
        if not self._pending:
            raise SimulationError("no pending interrupt to take")
        return self._pending.popleft()


class ApicBus:
    """Delivers IPI messages between local APICs after a wire latency.

    ``scheduler(delay, callback)`` is supplied by the owning tier.
    """

    def __init__(
        self,
        scheduler: Callable[[float, Callable[[], None]], object],
        wire_latency: float,
        clock: Callable[[], float],
    ) -> None:
        if wire_latency < 0:
            raise ConfigError("wire latency must be non-negative")
        self._scheduler = scheduler
        self._clock = clock
        self.wire_latency = wire_latency
        self._apics: Dict[int, LocalApic] = {}
        self.messages_sent = 0

    def attach(self, apic: LocalApic) -> None:
        if apic.apic_id in self._apics:
            raise ConfigError(f"APIC id {apic.apic_id} already attached")
        self._apics[apic.apic_id] = apic

    def apic(self, apic_id: int) -> LocalApic:
        return self._apics[apic_id]

    def send_ipi(self, dest_apic_id: int, vector: int) -> None:
        """Send an IPI; it arrives ``wire_latency`` later."""
        if dest_apic_id not in self._apics:
            raise SimulationError(f"IPI to unknown APIC id {dest_apic_id}")
        self.messages_sent += 1
        apic = self._apics[dest_apic_id]

        def deliver() -> None:
            apic.accept(vector, self._clock(), kind=InterruptKind.UIPI if vector == apic.uipi_notification_vector else None)

        self._scheduler(self.wire_latency, deliver)

    def send_device_interrupt(self, dest_apic_id: int, vector: int, delay: float = 0.0) -> None:
        """A device (NIC, accelerator) raises ``vector`` at the destination core."""
        if dest_apic_id not in self._apics:
            raise SimulationError(f"device interrupt to unknown APIC id {dest_apic_id}")
        self.messages_sent += 1
        apic = self._apics[dest_apic_id]

        def deliver() -> None:
            apic.accept(vector, self._clock(), kind=InterruptKind.DEVICE)

        self._scheduler(self.wire_latency + delay, deliver)
