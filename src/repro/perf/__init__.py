"""Performance subsystem: the parallel sweep engine and the persistent
cycle-tier result cache.

The cycle tier simulates at ~10^4-10^5 cycles/sec in pure Python, and every
figure runner re-simulates identical (program, core-config, delivery-strategy)
points serially on every invocation.  Both layers here exploit the same
property — each sweep point is independent and deterministic — so fan-out and
content-addressed memoization cannot change any result:

- :class:`repro.perf.engine.SweepRunner` fans independent sweep points out
  over a ``ProcessPoolExecutor`` (``jobs > 1``) with a serial fallback that
  keeps semantics unchanged.
- :class:`repro.perf.cache.ResultCache` memoizes cycle-tier outcomes on disk,
  keyed by a stable content hash of every simulation input plus a model
  version salt derived from the ``repro.cpu``/``repro.sim`` sources, so a
  stale entry can never survive a model edit.
"""

from repro.perf.cache import ResultCache, default_cache, model_version_salt
from repro.perf.engine import SweepRunner, resolve_jobs, run_sweep

__all__ = [
    "ResultCache",
    "SweepRunner",
    "default_cache",
    "model_version_salt",
    "resolve_jobs",
    "run_sweep",
]
