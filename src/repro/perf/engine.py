"""The parallel sweep engine.

Every figure sweep in ``repro.experiments`` is a grid of independent,
deterministic points: the outcome of one (program, configuration, interval)
cell depends only on its own arguments.  :class:`SweepRunner` exploits that
to fan points out over a :class:`concurrent.futures.ProcessPoolExecutor`
while guaranteeing the results are *exactly* what the serial path produces:

- point functions are pure (module-level callables over picklable points),
  so a worker process computes the same bits the parent would;
- results come back in submission order (``Executor.map``), so assembling
  the result tables is order-independent of completion;
- anything that cannot be pickled — ad-hoc lambda factories from tests, for
  example — silently falls back to the serial path, as does ``jobs=1`` and a
  pool that fails to start.  The fallback *is* the reference semantics.

Stochastic points must carry their own seed (see
:func:`repro.common.rng.derive_seed`) and build their own
:class:`~repro.common.rng.RngStreams` internally, so serial and parallel
execution draw identical variates.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.common.errors import ConfigError

PointT = TypeVar("PointT")
ResultT = TypeVar("ResultT")

#: Environment variable consulted when no explicit job count is given —
#: lets ``pytest benchmarks/`` and scripts opt into parallelism globally.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve an effective job count.

    Explicit ``jobs`` wins; otherwise the ``REPRO_JOBS`` environment
    variable; otherwise 1 (serial).  ``jobs=0`` / ``REPRO_JOBS=0`` means
    "one worker per CPU".
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ConfigError(f"{JOBS_ENV} must be an integer, got {env!r}")
    if jobs < 0:
        raise ConfigError(f"jobs must be non-negative, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _picklable(*objects: Any) -> bool:
    try:
        pickle.dumps(objects)
        return True
    except Exception:
        return False


class SweepRunner:
    """Maps a point function over a sweep, serially or across processes.

    The contract is that of ``[fn(p) for p in points]`` — same results, same
    order — with wall-clock as the only degree of freedom.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        #: How the last :meth:`map` call actually executed ("serial" or
        #: "parallel") — observable so tests can assert the fallback fired.
        self.last_mode: str = "serial"

    def map(
        self,
        fn: Callable[[PointT], ResultT],
        points: Iterable[PointT],
    ) -> List[ResultT]:
        """Run ``fn`` over every point; results in point order."""
        items: Sequence[PointT] = list(points)
        if self.jobs <= 1 or len(items) <= 1 or not _picklable(fn, items):
            return self._serial(fn, items)
        workers = min(self.jobs, len(items))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(fn, items))
        except (OSError, BrokenProcessPool):
            # Pool could not start (or died): the serial path is always safe.
            return self._serial(fn, items)
        self.last_mode = "parallel"
        return results

    def _serial(
        self, fn: Callable[[PointT], ResultT], items: Sequence[PointT]
    ) -> List[ResultT]:
        self.last_mode = "serial"
        return [fn(point) for point in items]


def run_sweep(
    fn: Callable[[PointT], ResultT],
    points: Iterable[PointT],
    jobs: Optional[int] = None,
) -> List[ResultT]:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(jobs).map(fn, points)
