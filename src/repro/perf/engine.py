"""The parallel sweep engine, hardened against worker failure.

Every figure sweep in ``repro.experiments`` is a grid of independent,
deterministic points: the outcome of one (program, configuration, interval)
cell depends only on its own arguments.  :class:`SweepRunner` exploits that
to fan points out over a :class:`concurrent.futures.ProcessPoolExecutor`
while guaranteeing the results are *exactly* what the serial path produces:

- point functions are pure (module-level callables over picklable points),
  so a worker process computes the same bits the parent would;
- results are keyed by submission index, so assembling the result tables is
  order-independent of completion;
- anything that cannot be pickled — ad-hoc lambda factories from tests, for
  example — silently falls back to the serial path, as does ``jobs=1`` and a
  pool that fails to start.  The fallback *is* the reference semantics.

Robustness layers (each off by default, enabled by constructor argument or
environment variable):

- **Salvage** (always on): if the worker pool dies mid-sweep
  (``BrokenProcessPool`` — an OOM-killed or crashed worker), results already
  completed are kept and only the incomplete points re-run serially; the
  pre-hardening engine discarded everything and started over.
- **Bounded retry** (``REPRO_POINT_RETRIES``, default 0): a point that
  raises is re-executed up to N times with exponential backoff
  (``REPRO_RETRY_BACKOFF`` seconds base, default 0.5) before the failure
  propagates — for transiently flaky points (resource exhaustion), never a
  way to hide deterministic bugs.
- **Progress watchdog** (``REPRO_POINT_TIMEOUT`` seconds): if *no* point
  completes within the window, the pool is abandoned
  (``shutdown(wait=False, cancel_futures=True)`` — a stuck worker cannot be
  killed portably) and the incomplete points re-run serially.
- **Checkpointing** (``REPRO_CHECKPOINT_DIR``): completed point results are
  appended to a JSONL file keyed by a stable hash of (fn, points); a killed
  sweep re-run with the same inputs restores completed points from the
  checkpoint and executes only the remainder.  The file is removed when the
  sweep completes.

Stochastic points must carry their own seed (see
:func:`repro.common.rng.derive_seed`) and build their own
:class:`~repro.common.rng.RngStreams` internally, so serial and parallel
execution draw identical variates.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import time
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    TypeVar,
)

from repro.common.counters import GLOBAL_COUNTERS
from repro.common.errors import ConfigError

log = logging.getLogger(__name__)

PointT = TypeVar("PointT")
ResultT = TypeVar("ResultT")

#: Environment variable consulted when no explicit job count is given —
#: lets ``pytest benchmarks/`` and scripts opt into parallelism globally.
JOBS_ENV = "REPRO_JOBS"
#: Progress-watchdog window in seconds (unset/0 disables the watchdog).
TIMEOUT_ENV = "REPRO_POINT_TIMEOUT"
#: Retries per failing point (unset/0 disables retries).
RETRIES_ENV = "REPRO_POINT_RETRIES"
#: Base of the exponential retry backoff, in seconds.
BACKOFF_ENV = "REPRO_RETRY_BACKOFF"
#: Directory for sweep checkpoints (unset disables checkpointing).
CHECKPOINT_ENV = "REPRO_CHECKPOINT_DIR"

DEFAULT_RETRY_BACKOFF = 0.5


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve an effective job count.

    Explicit ``jobs`` wins; otherwise the ``REPRO_JOBS`` environment
    variable; otherwise 1 (serial).  ``jobs=0`` / ``REPRO_JOBS=0`` means
    "one worker per CPU".
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if not env:
            return 1
        try:
            jobs = int(env)
        except ValueError:
            raise ConfigError(f"{JOBS_ENV} must be an integer, got {env!r}")
    if jobs < 0:
        raise ConfigError(f"jobs must be non-negative, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _env_number(name: str, default: float, kind: type) -> float:
    env = os.environ.get(name, "").strip()
    if not env:
        return default
    try:
        value = kind(env)
    except ValueError:
        raise ConfigError(f"{name} must be a {kind.__name__}, got {env!r}")
    if value < 0:
        raise ConfigError(f"{name} must be non-negative, got {value}")
    return value


def _picklable(*objects: Any) -> bool:
    try:
        pickle.dumps(objects)
        return True
    except Exception:
        return False


class _Watchdog(Exception):
    """Internal: no point completed within the timeout window."""


#: Budget for one checkpoint JSONL line's payload, in hex characters.
#: A payload over the budget is zlib-compressed; if still over, the
#: compressed hex is split across ``{"i", "p", "of", "z"}`` chunk lines so a
#: torn write can only ever lose whole points, never corrupt the file for
#: every later reader.
CHECKPOINT_LINE_BUDGET = 1 << 20


class _Checkpoint:
    """Append-only JSONL sweep checkpoint: one record per completed point.

    Record formats (``load`` accepts all three, ``record`` picks the
    smallest that fits :data:`CHECKPOINT_LINE_BUDGET`):

    - ``{"i": idx, "r": hex}`` — pickled result, hex-encoded (the common
      case for small points);
    - ``{"i": idx, "z": hex}`` — zlib-compressed pickle, hex-encoded;
    - ``{"i": idx, "p": k, "of": n, "z": hex}`` — the compressed hex split
      into ``n`` chunks; the point restores only once all ``n`` parts are
      present (a shard result with a large histogram easily exceeds one
      line's budget).

    Loading tolerates arbitrary damage — a corrupt, truncated, or stale
    line (or an incomplete chunk set) is skipped and that point simply
    re-runs; a damaged checkpoint can cost time, never correctness.
    """

    def __init__(self, path: Path, line_budget: int = CHECKPOINT_LINE_BUDGET) -> None:
        self.path = path
        if line_budget < 1:
            raise ConfigError(f"checkpoint line budget must be >= 1, got {line_budget}")
        self.line_budget = line_budget

    def load(self, n_points: int) -> Dict[int, Any]:
        results: Dict[int, Any] = {}
        parts: Dict[int, Dict[int, str]] = {}  # idx -> part number -> hex chunk
        expected: Dict[int, int] = {}  # idx -> part count
        try:
            text = self.path.read_text()
        except (OSError, UnicodeDecodeError):
            return results
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                idx = obj["i"]
                if not (isinstance(idx, int) and 0 <= idx < n_points):
                    continue
                if "r" in obj:
                    results[idx] = pickle.loads(bytes.fromhex(obj["r"]))
                elif "of" in obj:
                    part, of, chunk = obj["p"], obj["of"], obj["z"]
                    if not (isinstance(part, int) and isinstance(of, int)):
                        continue
                    if not (of >= 1 and 0 <= part < of and isinstance(chunk, str)):
                        continue
                    expected[idx] = of
                    parts.setdefault(idx, {})[part] = chunk
                    have = parts[idx]
                    if len(have) == of:
                        payload = "".join(have[k] for k in range(of))
                        results[idx] = pickle.loads(zlib.decompress(bytes.fromhex(payload)))
                else:
                    results[idx] = pickle.loads(zlib.decompress(bytes.fromhex(obj["z"])))
            except Exception:
                continue
        return results

    def record(self, idx: int, result: Any) -> None:
        try:
            data = pickle.dumps(result)
        except Exception:
            return  # unpicklable result: the point just re-runs on resume
        budget = self.line_budget
        payload = data.hex()
        if len(payload) <= budget:
            lines = [json.dumps({"i": idx, "r": payload})]
        else:
            packed = zlib.compress(data, 6).hex()
            if len(packed) <= budget:
                lines = [json.dumps({"i": idx, "z": packed})]
            else:
                n_parts = (len(packed) + budget - 1) // budget
                lines = [
                    json.dumps(
                        {
                            "i": idx,
                            "p": part,
                            "of": n_parts,
                            "z": packed[part * budget : (part + 1) * budget],
                        }
                    )
                    for part in range(n_parts)
                ]
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as fh:
                fh.write("\n".join(lines) + "\n")
                fh.flush()
        except OSError as exc:
            log.warning("sweep checkpoint write failed (%s): %s", self.path, exc)

    def complete(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


def _checkpoint_for(
    checkpoint_dir: Optional[str], fn: Callable, items: Sequence
) -> Optional[_Checkpoint]:
    """A checkpoint keyed by a stable hash of (fn, points), or None when
    checkpointing is off or the inputs have no stable identity."""
    if not checkpoint_dir:
        return None
    from repro.perf.cache import canonical  # late: avoid import cycles

    try:
        form = canonical([canonical(fn), [canonical(p) for p in items]])
    except ConfigError:
        log.warning("sweep inputs have no stable identity; checkpointing off")
        return None
    digest = hashlib.sha256(
        json.dumps(form, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
    return _Checkpoint(Path(checkpoint_dir) / f"sweep-{digest[:24]}.jsonl")


class SweepRunner:
    """Maps a point function over a sweep, serially or across processes.

    The contract is that of ``[fn(p) for p in points]`` — same results, same
    order — with wall-clock as the only degree of freedom.  See the module
    docstring for the failure-handling layers.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        point_timeout: Optional[float] = None,
        point_retries: Optional[int] = None,
        retry_backoff: Optional[float] = None,
        checkpoint_dir: Optional[str] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.point_timeout = (
            point_timeout
            if point_timeout is not None
            else _env_number(TIMEOUT_ENV, 0.0, float)
        ) or None  # 0 means "no watchdog"
        self.point_retries = int(
            point_retries
            if point_retries is not None
            else _env_number(RETRIES_ENV, 0, int)
        )
        self.retry_backoff = (
            retry_backoff
            if retry_backoff is not None
            else _env_number(BACKOFF_ENV, DEFAULT_RETRY_BACKOFF, float)
        )
        if self.point_timeout is not None and self.point_timeout < 0:
            raise ConfigError(f"point_timeout must be non-negative, got {self.point_timeout}")
        if self.point_retries < 0:
            raise ConfigError(f"point_retries must be non-negative, got {self.point_retries}")
        if self.retry_backoff < 0:
            raise ConfigError(f"retry_backoff must be non-negative, got {self.retry_backoff}")
        self.checkpoint_dir = (
            checkpoint_dir
            if checkpoint_dir is not None
            else os.environ.get(CHECKPOINT_ENV, "").strip() or None
        )
        #: How the last :meth:`map` call actually executed: "serial",
        #: "parallel", or "salvaged" (the pool died or stalled and the
        #: completed results were kept, with the rest re-run serially) —
        #: observable so tests can assert which path fired.
        self.last_mode: str = "serial"

    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable[[PointT], ResultT],
        points: Iterable[PointT],
    ) -> List[ResultT]:
        """Run ``fn`` over every point; results in point order."""
        items: Sequence[PointT] = list(points)
        parallel_ok = self.jobs > 1 and len(items) > 1 and _picklable(fn, items)
        checkpoint = _checkpoint_for(self.checkpoint_dir, fn, items)
        results: Dict[int, ResultT] = {}
        if checkpoint is not None:
            results = checkpoint.load(len(items))
            if results:
                GLOBAL_COUNTERS.sweep_points_resumed += len(results)
                log.info(
                    "sweep checkpoint %s: resumed %d/%d points",
                    checkpoint.path.name, len(results), len(items),
                )
        pending = [i for i in range(len(items)) if i not in results]
        if pending and parallel_ok and len(pending) > 1:
            self._parallel(fn, items, pending, results, checkpoint)
        elif pending:
            self._serial_into(fn, items, pending, results, checkpoint)
            self.last_mode = "serial"
        else:
            self.last_mode = "serial"
        if checkpoint is not None:
            checkpoint.complete()
        return [results[i] for i in range(len(items))]

    # ------------------------------------------------------------------

    def _run_point_with_retries(
        self, fn: Callable[[PointT], ResultT], point: PointT
    ) -> ResultT:
        attempt = 0
        while True:
            try:
                return fn(point)
            except Exception:
                if attempt >= self.point_retries:
                    raise
                attempt += 1
                GLOBAL_COUNTERS.sweep_points_retried += 1
                time.sleep(self.retry_backoff * (2 ** (attempt - 1)))

    def _serial_into(
        self,
        fn: Callable[[PointT], ResultT],
        items: Sequence[PointT],
        pending: Sequence[int],
        results: Dict[int, ResultT],
        checkpoint: Optional[_Checkpoint],
    ) -> None:
        for i in pending:
            results[i] = self._run_point_with_retries(fn, items[i])
            if checkpoint is not None:
                checkpoint.record(i, results[i])

    def _parallel(
        self,
        fn: Callable[[PointT], ResultT],
        items: Sequence[PointT],
        pending: Sequence[int],
        results: Dict[int, ResultT],
        checkpoint: Optional[_Checkpoint],
    ) -> None:
        try:
            pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(pending)))
        except OSError:
            # Pool could not start: the serial path is always safe.
            self._serial_into(fn, items, pending, results, checkpoint)
            self.last_mode = "serial"
            return
        parallel_done = 0
        attempts: Dict[int, int] = {i: 0 for i in pending}
        inflight: Dict[Any, int] = {}
        try:
            for i in pending:
                inflight[pool.submit(fn, items[i])] = i
            while inflight:
                done, _ = wait(
                    list(inflight),
                    timeout=self.point_timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    raise _Watchdog()
                for fut in done:
                    i = inflight.pop(fut)
                    try:
                        value = fut.result()
                    except BrokenProcessPool:
                        raise
                    except Exception:
                        if attempts[i] >= self.point_retries:
                            raise
                        attempts[i] += 1
                        GLOBAL_COUNTERS.sweep_points_retried += 1
                        time.sleep(self.retry_backoff * (2 ** (attempts[i] - 1)))
                        inflight[pool.submit(fn, items[i])] = i
                        continue
                    results[i] = value
                    parallel_done += 1
                    if checkpoint is not None:
                        checkpoint.record(i, value)
            pool.shutdown(wait=True)
            self.last_mode = "parallel"
        except (BrokenProcessPool, _Watchdog) as exc:
            # Salvage: keep every completed result, abandon the pool (a
            # stuck or dead worker cannot be reaped portably), and finish
            # the incomplete points serially.
            pool.shutdown(wait=False, cancel_futures=True)
            GLOBAL_COUNTERS.sweep_points_salvaged += parallel_done
            incomplete = sorted(i for i in pending if i not in results)
            log.warning(
                "sweep pool %s with %d/%d points done; finishing %d serially",
                "stalled" if isinstance(exc, _Watchdog) else "died",
                parallel_done, len(pending), len(incomplete),
            )
            self._serial_into(fn, items, incomplete, results, checkpoint)
            self.last_mode = "salvaged"
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise


def run_sweep(
    fn: Callable[[PointT], ResultT],
    points: Iterable[PointT],
    jobs: Optional[int] = None,
    **kwargs: Any,
) -> List[ResultT]:
    """One-shot convenience wrapper around :class:`SweepRunner`."""
    return SweepRunner(jobs, **kwargs).map(fn, points)
