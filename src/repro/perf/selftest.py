"""Reduced-scale determinism selftest for the perf subsystem.

Runs a small Figure 4 grid six ways — serial uncached, parallel uncached,
cold cache, warm cache, naive engine (``REPRO_FAST=0``), and with the
observability layer collecting (``repro.obs`` enabled) — and asserts every
table is identical to the serial reference.  This is the tier-2 smoke gate
behind ``python -m repro perf-selftest``: it proves the sweep engine's
fan-out, the persistent cache, the cycle-skipping fast engine, and trace
collection cannot change any experiment result on this machine.
"""

from __future__ import annotations

import os
import tempfile
import time
from contextlib import contextmanager
from functools import partial
from typing import Any, Callable, Dict, Iterator, Optional

from repro.apps import microbench as mb
from repro.common.counters import ENV_FAST
from repro.perf.cache import ENV_CACHE_DIR, ENV_CACHE_ENABLED

#: Reduced-scale grid: one benchmark, short interval so a handful of
#: interrupts land within the ~8k-cycle run.
SELFTEST_ITERATIONS = 8_000
SELFTEST_INTERVAL = 2_500


@contextmanager
def _env(**overrides: str) -> Iterator[None]:
    saved = {key: os.environ.get(key) for key in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _reduced_fig4(jobs: int) -> Dict[str, Any]:
    from repro.experiments.fig4_overheads import run_fig4

    benchmarks = {"count_loop": partial(mb.make_count_loop, SELFTEST_ITERATIONS)}
    return run_fig4(interval=SELFTEST_INTERVAL, benchmarks=benchmarks, jobs=jobs)


def _timed(fn: Callable[[], Any]) -> tuple:
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_selftest(jobs: int = 2, report: Optional[Callable[[str], None]] = None) -> Dict[str, Any]:
    """Run the determinism checks; returns pass/fail plus wall-clock numbers.

    ``report`` (e.g. ``print``) receives one progress line per phase.
    """
    say = report or (lambda _message: None)

    with _env(**{ENV_CACHE_ENABLED: "0"}):
        say(f"serial reference (jobs=1, cache off, {SELFTEST_ITERATIONS}-iteration grid)...")
        serial, t_serial = _timed(lambda: _reduced_fig4(jobs=1))
        say(f"  {t_serial:.2f}s")
        say(f"parallel (jobs={jobs}, cache off)...")
        parallel, t_parallel = _timed(lambda: _reduced_fig4(jobs=jobs))
        say(f"  {t_parallel:.2f}s")

    with tempfile.TemporaryDirectory(prefix="repro-selftest-cache-") as tmp:
        with _env(**{ENV_CACHE_ENABLED: "1", ENV_CACHE_DIR: tmp}):
            say("cold cache (jobs=1, fresh cache dir)...")
            cold, t_cold = _timed(lambda: _reduced_fig4(jobs=1))
            say(f"  {t_cold:.2f}s")
            say("warm cache (jobs=1, same cache dir)...")
            warm, t_warm = _timed(lambda: _reduced_fig4(jobs=1))
            say(f"  {t_warm:.2f}s")

    with _env(**{ENV_CACHE_ENABLED: "0", ENV_FAST: "0"}):
        say("naive engine (REPRO_FAST=0, jobs=1, cache off)...")
        naive, t_naive = _timed(lambda: _reduced_fig4(jobs=1))
        say(f"  {t_naive:.2f}s")

    # Observability transparency: collecting traces/metrics must be
    # invisible to experiment results (the obs layer only *reads*).
    from repro import obs

    with _env(**{ENV_CACHE_ENABLED: "0"}):
        say("observability enabled (jobs=1, cache off, tracer collecting)...")
        obs.enable()
        try:
            observed, t_observed = _timed(lambda: _reduced_fig4(jobs=1))
        finally:
            obs.disable()
        say(f"  {t_observed:.2f}s")

    checks = {
        "parallel_matches_serial": parallel == serial,
        "cold_cache_matches_serial": cold == serial,
        "warm_cache_matches_serial": warm == serial,
        "naive_engine_matches_serial": naive == serial,
        "observed_matches_serial": observed == serial,
    }
    result = {
        "ok": all(checks.values()),
        "checks": checks,
        "seconds": {
            "serial": t_serial,
            "parallel": t_parallel,
            "cold_cache": t_cold,
            "warm_cache": t_warm,
            "naive_engine": t_naive,
            "observed": t_observed,
        },
        "warm_speedup": (t_serial / t_warm) if t_warm > 0 else float("inf"),
    }
    for name, passed in checks.items():
        say(f"{'PASS' if passed else 'FAIL'}  {name}")
    say(f"warm-cache speedup over serial: {result['warm_speedup']:.1f}x")
    return result
