"""Persistent, content-addressed cache for cycle-tier results.

The cycle tier is deterministic: given the µ-ISA program bytes, the memory
image, the :class:`~repro.cpu.config.SystemConfig`, the delivery strategy and
the interrupt schedule, the outcome (cycle count, per-event costs, flush and
squash counters) is a pure function.  :class:`ResultCache` memoizes those
outcomes on disk so repeated figure runs and
``CostModel.from_cycle_model()`` skip re-simulation entirely.

Keys are SHA-256 digests of a *canonical* encoding of every simulation input
(:func:`canonical`) plus a **model version salt** — a hash over the
``repro.cpu`` and ``repro.uintr`` sources (:func:`model_version_salt`).  Any
edit to the cycle model changes the salt, so stale entries can never leak
across model versions; they simply stop being addressable.

Environment knobs:

- ``REPRO_CACHE_DIR`` — cache location (default ``~/.cache/repro-xui``).
- ``REPRO_CACHE=0`` (or ``off``/``false``) — disable the cache entirely.

Corrupt or unreadable entries are treated as misses: the point is
re-simulated and the entry rewritten, with a warning logged — a damaged
cache can cost time, never correctness.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import logging
import os
import tempfile
import time
from enum import Enum
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from repro.common.counters import GLOBAL_COUNTERS
from repro.common.errors import ConfigError

log = logging.getLogger(__name__)

#: Temp files from interrupted writes older than this are swept on first
#: disk access (a crashed worker's mkstemp leftovers; a *young* tmp file
#: may belong to a concurrent writer about to ``os.replace`` it).
STALE_TMP_SECONDS = 3600.0

#: Bumped on incompatible changes to the key or payload encoding.
CACHE_FORMAT_VERSION = 1

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_ENABLED = "REPRO_CACHE"

_DISABLED_VALUES = {"0", "off", "false", "no"}

#: Packages whose sources define the cycle model; editing any of them must
#: invalidate every cached cycle-tier outcome.
_MODEL_PACKAGES = ("cpu", "uintr")


# ---------------------------------------------------------------------------
# Canonical encoding
# ---------------------------------------------------------------------------


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serializable canonical form.

    Handles the vocabulary simulation inputs are made of: primitives,
    containers, enums, dataclasses (``Program``, ``Instruction``,
    ``SystemConfig``, ...), ``functools.partial``, plain callables (by
    qualified name), and objects exposing ``cache_fingerprint()`` (delivery
    strategies).  Raises :class:`ConfigError` for anything else, so an
    unhashable input is a loud error instead of a silent wrong key.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return ["float", repr(obj)]
    if isinstance(obj, bytes):
        return ["bytes", obj.hex()]
    if isinstance(obj, Enum):
        return ["enum", type(obj).__qualname__, canonical(obj.value)]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = [
            [f.name, canonical(getattr(obj, f.name))] for f in dataclasses.fields(obj)
        ]
        return ["dataclass", type(obj).__qualname__, fields]
    if isinstance(obj, dict):
        items = [[canonical(key), canonical(value)] for key, value in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return ["dict", items]
    if isinstance(obj, (list, tuple)):
        return ["seq", [canonical(item) for item in obj]]
    if isinstance(obj, (set, frozenset)):
        members = sorted(
            (canonical(item) for item in obj),
            key=lambda c: json.dumps(c, sort_keys=True),
        )
        return ["set", members]
    if isinstance(obj, functools.partial):
        return [
            "partial",
            canonical(obj.func),
            canonical(obj.args),
            canonical(obj.keywords),
        ]
    fingerprint = getattr(obj, "cache_fingerprint", None)
    if fingerprint is not None and callable(fingerprint):
        return ["fingerprint", type(obj).__qualname__, canonical(fingerprint())]
    if callable(obj):
        module = getattr(obj, "__module__", "")
        qualname = getattr(obj, "__qualname__", None)
        if qualname is None or "<locals>" in qualname or "<lambda>" in qualname:
            raise ConfigError(
                f"cannot build a stable cache key from local callable {obj!r}"
            )
        return ["callable", module, qualname]
    raise ConfigError(f"cannot build a stable cache key from {type(obj).__qualname__}")


@functools.lru_cache(maxsize=1)
def model_version_salt() -> str:
    """Hash of the cycle-model sources (``repro.cpu`` + ``repro.uintr``).

    Computed once per process.  Any source edit to the model changes this
    salt, and with it every cache key derived from it.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    digest.update(f"format={CACHE_FORMAT_VERSION}".encode())
    for package in _MODEL_PACKAGES:
        for path in sorted((root / package).glob("*.py")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# The on-disk store
# ---------------------------------------------------------------------------


def cache_enabled_by_env() -> bool:
    return os.environ.get(ENV_CACHE_ENABLED, "1").strip().lower() not in _DISABLED_VALUES


def cache_dir_from_env() -> Path:
    configured = os.environ.get(ENV_CACHE_DIR, "").strip()
    if configured:
        return Path(configured)
    return Path(os.path.expanduser("~")) / ".cache" / "repro-xui"


class ResultCache:
    """A content-addressed JSON store of simulation outcomes.

    Entries live at ``<root>/<key[:2]>/<key>.json`` and are written
    atomically (temp file + ``os.replace``), so concurrent sweep workers may
    race on the same point without corrupting each other.
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        enabled: bool = True,
        salt: Optional[str] = None,
    ) -> None:
        self.root = Path(root) if root is not None else cache_dir_from_env()
        self.enabled = enabled
        self._salt = salt
        self.hits = 0
        self.misses = 0
        self._tmp_swept = False

    def _sweep_stale_tmp(self) -> int:
        """Remove leftover ``*.tmp`` files from interrupted writes.

        Runs once per cache instance, lazily on the first disk access, so
        constructing a cache stays free.  Only files older than
        ``STALE_TMP_SECONDS`` go — younger ones may be concurrent writers
        mid-``os.replace``.  Returns the number removed.
        """
        if self._tmp_swept or not self.enabled:
            return 0
        self._tmp_swept = True
        removed = 0
        try:
            candidates = list(self.root.glob("*/*.tmp"))
        except OSError:
            return 0
        cutoff = time.time() - STALE_TMP_SECONDS
        for path in candidates:
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue
        if removed:
            GLOBAL_COUNTERS.cache_stale_tmp_swept += removed
            log.info("result cache: swept %d stale tmp file(s)", removed)
        return removed

    @property
    def salt(self) -> str:
        if self._salt is None:
            self._salt = model_version_salt()
        return self._salt

    # -- keys -----------------------------------------------------------
    def key_for(self, payload: Any) -> str:
        """The content hash of ``payload`` under the current model salt."""
        body = json.dumps(
            [CACHE_FORMAT_VERSION, self.salt, canonical(payload)],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(body.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- store ----------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored value for ``key``, or None (miss / disabled / corrupt)."""
        if not self.enabled:
            return None
        self._sweep_stale_tmp()
        path = self._path(key)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as exc:
            log.warning("result cache: unreadable entry %s (%s); re-simulating", path, exc)
            GLOBAL_COUNTERS.cache_corrupt_entries += 1
            self.misses += 1
            return None
        try:
            value = json.loads(raw)
            if not isinstance(value, dict):
                raise ValueError("cache entry is not an object")
        except ValueError as exc:
            log.warning("result cache: corrupt entry %s (%s); re-simulating", path, exc)
            GLOBAL_COUNTERS.cache_corrupt_entries += 1
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: str, value: Dict[str, Any]) -> None:
        """Atomically store ``value`` under ``key`` (best effort)."""
        if not self.enabled:
            return
        self._sweep_stale_tmp()
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(value, handle, separators=(",", ":"))
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            # An unwritable cache slows things down; it must not fail runs.
            GLOBAL_COUNTERS.cache_unwritable_writes += 1
            log.warning("result cache: cannot write %s (%s)", path, exc)

    def memoize(
        self, payload: Any, compute: Callable[[], Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Return the cached value for ``payload``, computing it on a miss."""
        if not self.enabled:
            return compute()
        key = self.key_for(payload)
        cached = self.get(key)
        if cached is not None:
            return cached
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> int:
        """Delete every entry under this cache root, including orphaned
        ``*.tmp`` files from interrupted writes; returns the number of JSON
        entries removed (tmp files are not entries and are not counted)."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.root.glob("*/*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass
        return removed


def default_cache() -> ResultCache:
    """The process-default cache, honouring the ``REPRO_CACHE*`` environment.

    Constructed per call (cheap — the salt is memoized) so tests and the
    selftest can retarget it by mutating the environment.
    """
    return ResultCache(root=cache_dir_from_env(), enabled=cache_enabled_by_env())
