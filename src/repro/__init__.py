"""repro — a reproduction of "Extended User Interrupts (xUI): Fast and
Flexible Notification without Polling" (ASPLOS 2025).

Two simulation tiers back the paper's evaluation:

- the **cycle tier** (:mod:`repro.cpu`, :mod:`repro.uintr`,
  :mod:`repro.xui`): an out-of-order core model with UIPI and the xUI
  extensions (tracked interrupts, hardware safepoints, the kernel-bypass
  timer, interrupt forwarding) — Tables 2-3, Figures 2, 4, 5, §3.5, §6.1;
- the **event tier** (:mod:`repro.sim`, :mod:`repro.kernel`,
  :mod:`repro.runtime`, :mod:`repro.net`, :mod:`repro.accel`): a
  discrete-event system simulator calibrated by the cycle tier — Figures
  6-9.

Quickstart::

    from repro import quickstart_uipi_roundtrip
    result = quickstart_uipi_roundtrip()
    print(result["interrupts_delivered"], result["end_to_end_cycles"])

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
experiment harness (one module per paper table/figure).
"""

from repro.common.units import Frequency, cycles_to_ns, cycles_to_us, ns_to_cycles, us_to_cycles
from repro.notify.costs import CostModel
from repro.notify.mechanisms import Mechanism

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "Mechanism",
    "Frequency",
    "cycles_to_ns",
    "cycles_to_us",
    "ns_to_cycles",
    "us_to_cycles",
    "quickstart_uipi_roundtrip",
    "__version__",
]


def quickstart_uipi_roundtrip(tracked: bool = False) -> dict:
    """Send one user interrupt between two simulated cores and report costs.

    A minimal end-to-end tour of the cycle tier: sets up the UIPI route
    (UPID + UITT), sends a ``senduipi``, and measures delivery with either
    the stock flush strategy or xUI tracking.
    """
    from repro.cpu import isa, ProgramBuilder, MultiCoreSystem, FlushStrategy, TrackedStrategy

    sender = ProgramBuilder("sender")
    sender.emit(isa.senduipi(0))
    sender.emit(isa.halt())
    receiver = ProgramBuilder("receiver")
    receiver.label("loop")
    receiver.emit(isa.addi(1, 1, 1))
    receiver.emit(isa.jmp("loop"))
    receiver.emit_default_handler(counter_addr=0x20_0000)
    strategy = TrackedStrategy() if tracked else FlushStrategy()
    system = MultiCoreSystem(
        [sender.build(), receiver.build()], [FlushStrategy(), strategy], trace=True
    )
    system.connect_uipi(sender_core_id=0, receiver_core_id=1, user_vector=1)
    system.run(40_000, until_halted=[0])
    system.run(8_000)
    send = system.trace.first("senduipi_start")
    entry = system.trace.first("handler_fetch")
    return {
        "interrupts_delivered": system.cores[1].stats.interrupts_delivered,
        "handler_counter": system.shared.read(0x20_0000),
        "end_to_end_cycles": (entry.time - send.time) if send and entry else None,
        "strategy": strategy.name,
    }
