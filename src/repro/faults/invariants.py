"""Model invariants checked during fault-injected runs.

The checker hooks :attr:`repro.cpu.core.Core.invariant_probe` — a read-only
callback the core fires after interrupt injection, after misspeculation
squashes, after full flushes, and at uiret commit — plus a
:meth:`InvariantChecker.finish` pass over the whole system at end of run.
Probes never mutate model state, so a checked run stays byte-identical to
an unchecked one (and between the naive and cycle-skipping engines).

Checked invariants:

1. **Exactly-once-or-explicitly-dropped delivery** (at finish): every user
   interrupt ever queued by an APIC is either committed by a uiret
   (``interrupts_delivered``), still waiting in the APIC, staged privately
   by a delivery strategy (:meth:`DeliveryStrategy.pending_inventory`), or
   in flight on a core.  Faults may *drop* messages, but only through the
   interceptor, which never queues them — so nothing queued ever vanishes.
2. **No delivery outside safepoints in safepoint mode** (at inject): a
   tracked delivery with ``safepoint_mode`` set must have its return PC at
   a safepoint-prefixed instruction (§4.4).
3. **ROB/tracked-µop consistency after squash and flush**: no squashed µop
   remains in the ROB, sequence numbers stay strictly increasing, and the
   issue-queue census matches the ROB's waiting/ready population — the
   state tracked delivery re-injects from (§4.2) is sane.
4. **Delivery state machine coherence** (at uiret): a uiret can only
   commit with a delivery in flight and the handler flag set.
5. **Per-core monotonic clocks**: a core's cycle never decreases between
   probes (the cycle-skipping engine must only move time forward).

A violation raises :class:`~repro.common.errors.InvariantViolation`
carrying the fault plan's byte-stable dump, so the exact failing schedule
replays from the exception message alone.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.common.counters import active_engine_flags
from repro.common.errors import InvariantViolation
from repro.cpu.backend import ST_READY, ST_WAITING
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.core import Core
    from repro.cpu.multicore import MultiCoreSystem


class InvariantChecker:
    """Install on a :class:`MultiCoreSystem`; call :meth:`finish` after the
    run for the cross-core conservation check."""

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan
        self.checks_run = 0
        self.probes_fired = 0
        self._last_cycle: Dict[int, int] = {}
        self._installed = False

    # ------------------------------------------------------------------

    def install(self, system: "MultiCoreSystem") -> "InvariantChecker":
        if self._installed:
            raise self._violation("InvariantChecker.install called twice")
        self._installed = True
        for core in system.cores:
            if core.invariant_probe is not None:
                raise self._violation(
                    f"core {core.core_id} already has an invariant probe"
                )
            core.invariant_probe = self.probe
        return self

    # ------------------------------------------------------------------

    def _violation(self, message: str) -> InvariantViolation:
        dump = self.plan.dumps() if self.plan is not None else None
        # Snapshot the engine tiers at raise time: the violation fired
        # under whatever flags the failing run was using, and a replay is
        # only a replay under those same tiers.
        return InvariantViolation(
            message, plan_dump=dump, engine_flags=active_engine_flags()
        )

    def _check(self, condition: bool, message: str) -> None:
        self.checks_run += 1
        if not condition:
            raise self._violation(message)

    # ------------------------------------------------------------------

    def probe(self, event: str, core: "Core") -> None:
        """The per-core hook (read-only; see class docstring)."""
        self.probes_fired += 1
        cid = core.core_id
        last = self._last_cycle.get(cid)
        self._check(
            last is None or core.cycle >= last,
            f"core {cid} clock moved backwards: {last} -> {core.cycle} at {event!r}",
        )
        self._last_cycle[cid] = core.cycle
        if event in ("squash", "flush"):
            self._check_rob(core, event)
        elif event == "inject":
            self._check_inject(core)
        elif event == "uiret":
            self._check_uiret(core)

    def _check_rob(self, core: "Core", event: str) -> None:
        cid = core.core_id
        iq = 0
        prev_seq = -1
        for uop in core.rob:
            self._check(
                not uop.squashed,
                f"core {cid}: squashed µop seq={uop.seq} survived {event}",
            )
            self._check(
                uop.seq > prev_seq,
                f"core {cid}: ROB sequence not increasing after {event} "
                f"({prev_seq} then {uop.seq})",
            )
            prev_seq = uop.seq
            if uop.state in (ST_WAITING, ST_READY):
                iq += 1
        self._check(
            core.iq_count == iq,
            f"core {cid}: issue-queue census {core.iq_count} != ROB "
            f"waiting/ready population {iq} after {event}",
        )
        if event == "flush":
            self._check(
                not core.rob,
                f"core {cid}: ROB not empty after a full flush",
            )

    def _check_inject(self, core: "Core") -> None:
        cid = core.core_id
        self._check(
            core.delivery_state == "inflight" and core.current_interrupt is not None,
            f"core {cid}: inject probe without an in-flight delivery",
        )
        if core.uintr.safepoint_mode and core.strategy.name == "tracked":
            pc = core.uintr.ui_return_pc
            self._check(
                pc is not None and core.safepoint_at(pc),
                f"core {cid}: safepoint-mode tracked delivery injected at "
                f"non-safepoint pc={pc}",
            )

    def _check_uiret(self, core: "Core") -> None:
        cid = core.core_id
        self._check(
            core.delivery_state == "inflight",
            f"core {cid}: uiret committed with no delivery in flight",
        )
        self._check(
            core.uintr.in_handler,
            f"core {cid}: uiret committed outside a handler",
        )

    # ------------------------------------------------------------------

    def finish(self, system: "MultiCoreSystem") -> Dict[str, int]:
        """End-of-run conservation audit; returns the accounting terms."""
        queued = delivered = waiting = staged = inflight = dropped = 0
        for core in system.cores:
            queued += core.apic.user_queued
            dropped += core.apic.faults_dropped
            delivered += core.stats.interrupts_delivered
            waiting += len(core.apic._pending)
            staged += len(core.strategy.pending_inventory())
            if core.delivery_state == "inflight":
                inflight += 1
        self._check(
            queued == delivered + waiting + staged + inflight,
            "delivery conservation violated: "
            f"queued={queued} != delivered={delivered} + waiting={waiting} "
            f"+ staged={staged} + inflight={inflight} "
            f"(explicitly dropped before queueing: {dropped})",
        )
        return {
            "queued": queued,
            "delivered": delivered,
            "waiting": waiting,
            "staged": staged,
            "inflight": inflight,
            "dropped": dropped,
            "checks_run": self.checks_run,
            "probes_fired": self.probes_fired,
        }
