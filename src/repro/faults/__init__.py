"""Deterministic fault injection and invariant checking (robustness layer).

Public surface:

- :class:`~repro.faults.plan.Fault` / :class:`~repro.faults.plan.FaultPlan`
  — seedable, byte-stable fault schedules.
- :class:`~repro.faults.injector.FaultInjector` (cycle tier) and
  :class:`~repro.faults.injector.EventFaultInjector` (event/kernel tier)
  — apply a plan to a running system.
- :class:`~repro.faults.invariants.InvariantChecker` — read-only probes
  plus an end-of-run delivery-conservation audit; violations raise
  :class:`~repro.common.errors.InvariantViolation` carrying the plan dump.
- :func:`~repro.faults.harness.run_fault_cell` /
  :func:`~repro.faults.harness.run_fault_matrix` — the fault-matrix
  harness comparing naive vs cycle-skipping engines under faults.
"""

from repro.common.errors import InvariantViolation
from repro.faults.injector import (
    EventFaultInjector,
    EventTierTargets,
    FaultInjector,
    InjectionCounters,
)
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import (
    CYCLE_TIER_KINDS,
    FAULT_KINDS,
    Fault,
    FaultPlan,
    merge_plans,
    plan_for_kind,
)
from repro.faults.harness import run_fault_cell, run_fault_matrix

__all__ = [
    "CYCLE_TIER_KINDS",
    "FAULT_KINDS",
    "EventFaultInjector",
    "EventTierTargets",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "InjectionCounters",
    "InvariantChecker",
    "InvariantViolation",
    "merge_plans",
    "plan_for_kind",
    "run_fault_cell",
    "run_fault_matrix",
]
