"""Fault-matrix harness: run fault-injected cells under both engines.

A *cell* is one (fault plan × delivery strategy × engine) combination: a
two-core system — core 0 runs a microbenchmark with a registered handler
and an armed KB timer, core 1 is a dedicated UIPI timer core (§2's
dedicated-core pattern) — with a :class:`FaultInjector` and an
:class:`InvariantChecker` installed.  :func:`run_fault_matrix` sweeps the
grid and, for every (plan, strategy) point, demands byte-identical
simulated results between the naive stepper and the cycle-skipping engine
(``REPRO_FAST``) — faults must not open an engine-equivalence gap.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.apps import microbench as mb
from repro.common.counters import ENV_FAST
from repro.common.errors import ConfigError
from repro.cpu.delivery import DrainStrategy, FlushStrategy, TrackedStrategy
from repro.cpu.multicore import MultiCoreSystem
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import CYCLE_TIER_KINDS, FaultPlan, plan_for_kind

#: Matches the equality suite: short interval, small workloads.
INTERVAL = 900
MAX_CYCLES = 2_000_000
SENDER_COUNT = 64

STRATEGIES = {
    "flush": FlushStrategy,
    "drain": DrainStrategy,
    "tracked": TrackedStrategy,
}

#: The default matrix axes (every cycle-tier fault kind x every strategy).
DEFAULT_KINDS: Sequence[str] = CYCLE_TIER_KINDS
DEFAULT_STRATEGIES: Sequence[str] = tuple(STRATEGIES)


def build_cell(
    plan: FaultPlan,
    strategy_name: str,
    *,
    workload_name: str = "count_loop",
    safepoint: bool = False,
    check_invariants: bool = True,
):
    """Build (system, injector, checker) for one fault cell, un-run."""
    if strategy_name not in STRATEGIES:
        raise ConfigError(
            f"unknown strategy {strategy_name!r}; expected one of {tuple(STRATEGIES)}"
        )
    if workload_name == "count_loop":
        workload = mb.make_count_loop(3_000)
    elif workload_name == "pointer_chase":
        workload = mb.make_pointer_chase(48, stride=64, iterations=150)
    elif workload_name == "memops":
        workload = mb.make_memops(iterations=150, footprint_kb=16)
    elif workload_name == "fib":
        workload = mb.make_fib(9)
    else:
        raise ConfigError(f"unknown workload {workload_name!r}")
    strategy = STRATEGIES[strategy_name]()
    sender = mb.make_uipi_timer_core(INTERVAL, SENDER_COUNT)
    system = MultiCoreSystem(
        [workload.program, sender.program],
        [strategy, FlushStrategy()],
        trace=True,
    )
    workload.install(system.shared)
    system.connect_uipi(sender_core_id=1, receiver_core_id=0, user_vector=1)
    system.enable_kb_timer(0)
    core = system.cores[0]
    core.uintr.safepoint_mode = safepoint
    core.uintr.kb_timer.arm_periodic(INTERVAL + 137, now=0)
    checker = InvariantChecker(plan).install(system) if check_invariants else None
    injector = FaultInjector(plan).install(system)
    return system, injector, checker


def run_fault_cell(
    plan: FaultPlan,
    strategy_name: str,
    *,
    engine: str = "fast",
    workload_name: str = "count_loop",
    safepoint: bool = False,
    check_invariants: bool = True,
    max_cycles: int = MAX_CYCLES,
) -> Dict[str, object]:
    """Run one cell under the chosen engine and snapshot everything.

    ``engine`` is ``"fast"`` or ``"naive"`` — the ``REPRO_FAST`` switch is
    set for the duration of the run and restored afterwards.  The returned
    ``stats``/``trace``/``cycles`` are the simulated results (compared
    across engines); ``faults``/``accounting`` are injector/checker
    telemetry.
    """
    if engine not in ("fast", "naive"):
        raise ConfigError(f"engine must be 'fast' or 'naive', got {engine!r}")
    system, injector, checker = build_cell(
        plan,
        strategy_name,
        workload_name=workload_name,
        safepoint=safepoint,
        check_invariants=check_invariants,
    )
    # Intentional environment access (suppressed, not baselined): toggling
    # the engine under test IS this harness's job, and REPRO_FAST is read by
    # repro.common.counters at run time — there is no parameter to thread.
    # The save/restore pair keeps the toggle invisible to the caller.
    saved = os.environ.get(ENV_FAST)  # detlint: ignore[DET004]
    os.environ[ENV_FAST] = "1" if engine == "fast" else "0"  # detlint: ignore[DET004]
    try:
        system.run(max_cycles, until_halted=[0])
    finally:
        if saved is None:
            os.environ.pop(ENV_FAST, None)  # detlint: ignore[DET004]
        else:
            os.environ[ENV_FAST] = saved  # detlint: ignore[DET004]
    accounting = checker.finish(system) if checker is not None else None
    return {
        "halted": system.cores[0].halted,
        "cycles": system.cycle,
        "stats": [dict(c.stats.snapshot().__dict__) for c in system.cores],
        "trace": [
            (event.time, event.kind, tuple(sorted(event.detail.items())))
            for event in system.trace.events
        ],
        "faults": injector.counters.as_dict(),
        "accounting": accounting,
    }


def simulated_view(result: Dict[str, object]) -> Dict[str, object]:
    """The engine-comparable slice of a cell result (drops telemetry)."""
    return {k: result[k] for k in ("halted", "cycles", "stats", "trace")}


def run_fault_matrix(
    *,
    kinds: Sequence[str] = DEFAULT_KINDS,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    seed: int = 0,
    quick: bool = False,
    workload_name: str = "count_loop",
) -> List[Dict[str, object]]:
    """Sweep (kind × strategy), running each plan under both engines.

    Returns one record per point with ``match`` (naive vs fast simulated
    results identical), the fault counters, and the conservation
    accounting.  Invariant violations propagate — a violating plan is a
    finding, not a matrix result.  ``quick`` trims the per-kind plan to
    two faults for smoke-test latency.
    """
    count = 2 if quick else 4
    # Scheduled-fault times must land inside even the fastest cell: the
    # tracked strategy finishes the default workload in a few thousand
    # cycles (no flush/drain overhead), so the horizon stays small.
    horizon = 3_000
    records: List[Dict[str, object]] = []
    for kind in kinds:
        plan = plan_for_kind(kind, seed=seed, core=0, count=count, horizon=horizon)
        for strategy_name in strategies:
            naive = run_fault_cell(
                plan, strategy_name, engine="naive", workload_name=workload_name,
            )
            fast = run_fault_cell(
                plan, strategy_name, engine="fast", workload_name=workload_name,
            )
            records.append(
                {
                    "kind": kind,
                    "strategy": strategy_name,
                    "plan": plan.dumps(),
                    "match": simulated_view(naive) == simulated_view(fast),
                    "cycles": fast["cycles"],
                    "delivered": fast["stats"][0]["interrupts_delivered"],
                    "faults": fast["faults"],
                    "accounting": fast["accounting"],
                }
            )
    return records
