"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is a frozen schedule of :class:`Fault` records.  The
whole subsystem is built around replayability: a plan serialises to a
byte-stable JSON string (sorted keys, compact separators), and
:meth:`FaultPlan.loads` reconstructs an identical plan, so any failure
observed under injection — including an invariant violation, which embeds
the dump in its message — reproduces exactly.

Fault kinds
-----------

``drop_send``
    The ``index``-th interrupt message accepted by ``core``'s APIC is
    silently discarded (a lost IPI on the interconnect).
``dup_send``
    The ``index``-th accepted message is delivered twice (a replayed
    message).
``delay_send``
    The ``index``-th accepted message is held for ``delay`` cycles before
    it reaches the APIC (interconnect congestion).
``upid_stall``
    At cycle ``at``, the target core's data caches are flushed, so the
    next UPID (or any memory) access pays a DRAM round trip — models a
    UPID cache line stolen by a remote writer mid-notification.
``spurious_uintr``
    At cycle ``at``, a UIPI notification arrives at ``core`` with nothing
    posted in the PIR — the notification-processing microcode runs and
    finds no work (§4.1's recognition path must tolerate this).
``timer_drift``
    At cycle ``at``, the armed KB timer's deadline on ``core`` slips
    ``delay`` cycles late (clock-domain crossing / power-state wakeup).
``misspec_storm``
    At cycle ``at``, ``core``'s branch predictor state is scrambled
    (gshare counters inverted, BTB invalidated), forcing a burst of
    mispredictions — stresses tracked-delivery re-injection (§4.2).
``ctx_switch``
    At time ``at``, the kernel forcibly preempts the thread on ``core``
    (event/kernel tier only — the cycle tier models one thread per core).
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.common.errors import ConfigError

#: Every fault kind the injectors understand, in canonical order.
FAULT_KINDS: Tuple[str, ...] = (
    "drop_send",
    "dup_send",
    "delay_send",
    "upid_stall",
    "spurious_uintr",
    "timer_drift",
    "misspec_storm",
    "ctx_switch",
)

#: Kinds that target a message by accept-index rather than a cycle.
MESSAGE_KINDS: Tuple[str, ...] = ("drop_send", "dup_send", "delay_send")

#: Kinds the cycle-tier injector can apply (ctx_switch is kernel-tier only).
CYCLE_TIER_KINDS: Tuple[str, ...] = tuple(
    k for k in FAULT_KINDS if k != "ctx_switch"
)

#: Upper bound for cycle-valued fields (``at``/``index``/``delay``) in
#: deserialized plans.  Far past any reachable simulation horizon, but it
#: keeps a corrupted dump from smuggling in a value that arithmetic
#: downstream (deadline += delay, schedule(at - cycle)) silently wraps or
#: that stalls a replay forever.
MAX_CYCLE_VALUE = 2**62


def _require_plan_int(value: object, what: str) -> int:
    """An actual non-negative bounded int — bools, floats, and strings are
    deserialization errors, not coercions."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(f"{what} must be an integer, got {value!r}")
    if value < 0:
        raise ConfigError(f"{what} must be non-negative, got {value}")
    if value > MAX_CYCLE_VALUE:
        raise ConfigError(f"{what} is out of range (> {MAX_CYCLE_VALUE}): {value}")
    return value


def _reject_unknown_keys(obj: object, allowed: Tuple[str, ...], what: str) -> dict:
    """Strict JSON object policy: unknown keys are errors, never dropped.

    A plan dump is a replay artifact — a key this version doesn't
    understand means the dump came from a different schema, and silently
    ignoring it would replay a *different* fault schedule than the one
    that produced the failure.
    """
    if not isinstance(obj, dict):
        raise ConfigError(f"{what} must be a JSON object, got {type(obj).__name__}")
    unknown = sorted(set(obj) - set(allowed))
    if unknown:
        raise ConfigError(
            f"{what} has unknown key(s) {unknown}; expected a subset of {sorted(allowed)}"
        )
    return obj


@dataclass(frozen=True, slots=True)
class Fault:
    """One scheduled fault.

    ``at`` is a cycle (scheduled kinds) and ``index`` a 1-based accept
    count (message kinds); the unused field stays 0.  ``delay`` is the
    extra latency for ``delay_send`` and ``timer_drift``.
    """

    kind: str
    core: int = 0
    at: int = 0
    index: int = 0
    delay: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.core < 0:
            raise ConfigError(f"fault core must be non-negative, got {self.core}")
        if self.at < 0 or self.index < 0 or self.delay < 0:
            raise ConfigError(f"fault fields must be non-negative: {self}")
        if max(self.at, self.index, self.delay) > MAX_CYCLE_VALUE:
            raise ConfigError(
                f"fault cycle fields are out of range (> {MAX_CYCLE_VALUE}): {self}"
            )
        if self.kind in MESSAGE_KINDS:
            if self.index < 1:
                raise ConfigError(
                    f"{self.kind} targets a message: index must be >= 1, got {self.index}"
                )
        if self.kind in ("delay_send", "timer_drift") and self.delay < 1:
            raise ConfigError(f"{self.kind} needs a positive delay, got {self.delay}")

    def to_json(self) -> dict:
        return {
            "at": self.at,
            "core": self.core,
            "delay": self.delay,
            "index": self.index,
            "kind": self.kind,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "Fault":
        _reject_unknown_keys(obj, ("kind", "core", "at", "index", "delay"), "fault")
        if "kind" not in obj:
            raise ConfigError("fault is missing required key 'kind'")
        kind = obj["kind"]
        if not isinstance(kind, str):
            raise ConfigError(f"fault kind must be a string, got {kind!r}")
        return cls(
            kind=kind,
            core=_require_plan_int(obj.get("core", 0), "fault core"),
            at=_require_plan_int(obj.get("at", 0), "fault at"),
            index=_require_plan_int(obj.get("index", 0), "fault index"),
            delay=_require_plan_int(obj.get("delay", 0), "fault delay"),
        )


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seed plus the fault schedule it generated (or a hand-built one).

    ``dumps()`` is byte-stable: two equal plans serialise to identical
    strings, and ``loads(dumps())`` round-trips exactly — this is what
    makes an :class:`~repro.common.errors.InvariantViolation` replayable.
    """

    seed: int
    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def dumps(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))

    def to_json(self) -> dict:
        return {"faults": [f.to_json() for f in self.faults], "seed": self.seed}

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"fault plan JSON does not parse: {exc}") from exc
        return cls.from_json(obj)

    @classmethod
    def from_json(cls, obj: dict) -> "FaultPlan":
        _reject_unknown_keys(obj, ("seed", "faults"), "fault plan")
        for key in ("seed", "faults"):
            if key not in obj:
                raise ConfigError(f"fault plan is missing required key {key!r}")
        faults = obj["faults"]
        if not isinstance(faults, list):
            raise ConfigError(
                f"fault plan 'faults' must be a list, got {type(faults).__name__}"
            )
        return cls(
            seed=_require_plan_int(obj["seed"], "fault plan seed"),
            faults=tuple(Fault.from_json(f) for f in faults),
        )

    def for_core(self, core: int) -> Tuple[Fault, ...]:
        return tuple(f for f in self.faults if f.core == core)

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({f.kind for f in self.faults}))

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        cores: int = 1,
        horizon: int = 100_000,
        count: int = 8,
        kinds: Sequence[str] = CYCLE_TIER_KINDS,
        max_index: int = 32,
        max_delay: int = 2_000,
    ) -> "FaultPlan":
        """A seed-deterministic plan: ``count`` faults drawn from ``kinds``.

        Uses :class:`random.Random` (the stdlib Mersenne Twister), whose
        sequence is stable across CPython versions, so the same seed builds
        the same plan everywhere.  Faults come out sorted by (at, index)
        for readability; ordering never affects injection, which keys on
        absolute cycles and accept counts.
        """
        if cores < 1:
            raise ConfigError(f"need at least one core, got {cores}")
        if horizon < 1 or count < 0:
            raise ConfigError(f"bad horizon={horizon} / count={count}")
        unknown = [k for k in kinds if k not in FAULT_KINDS]
        if unknown:
            raise ConfigError(f"unknown fault kinds {unknown}; expected {FAULT_KINDS}")
        if not kinds:
            raise ConfigError("kinds must not be empty")
        rng = random.Random(seed)
        faults = []
        for _ in range(count):
            kind = rng.choice(list(kinds))
            core = rng.randrange(cores)
            if kind in MESSAGE_KINDS:
                fault = Fault(
                    kind=kind,
                    core=core,
                    index=rng.randint(1, max_index),
                    delay=rng.randint(1, max_delay) if kind == "delay_send" else 0,
                )
            else:
                fault = Fault(
                    kind=kind,
                    core=core,
                    at=rng.randrange(1, horizon),
                    delay=rng.randint(1, max_delay)
                    if kind in ("timer_drift", "ctx_switch")
                    else 0,
                )
            faults.append(fault)
        faults.sort(key=lambda f: (f.at, f.index, f.kind, f.core))
        return cls(seed=seed, faults=tuple(faults))


def plan_for_kind(
    kind: str, *, seed: int = 0, core: int = 0, count: int = 4, horizon: int = 100_000
) -> FaultPlan:
    """A small deterministic plan exercising exactly one fault kind.

    The fault-matrix suite uses this to build one cell per (kind, strategy,
    engine) without hand-writing schedules.  Message faults target early
    accept indices (2, 5, 8, ...) so they trigger even in short runs;
    scheduled faults are spread over ``horizon`` so early- and late-phase
    behaviour are both hit.
    """
    if kind not in FAULT_KINDS:
        raise ConfigError(f"unknown fault kind {kind!r}")
    # zlib.crc32, not hash(): str hashing is salted per process, and the
    # plan must be identical in every worker for replay to work.
    rng = random.Random((seed << 8) ^ zlib.crc32(kind.encode("ascii")))
    faults = []
    for i in range(count):
        if kind in MESSAGE_KINDS:
            faults.append(
                Fault(
                    kind=kind,
                    core=core,
                    # Stride 3 with jitter <= 1 keeps indices unique.
                    index=2 + i * 3 + rng.randint(0, 1),
                    delay=150 + 100 * i if kind == "delay_send" else 0,
                )
            )
        else:
            at = (i + 1) * horizon // (count + 1) + rng.randint(0, 99)
            faults.append(
                Fault(
                    kind=kind,
                    core=core,
                    at=at,
                    delay=500 + 250 * i if kind in ("timer_drift", "ctx_switch") else 0,
                )
            )
    return FaultPlan(seed=seed, faults=tuple(faults))


def merge_plans(seed: int, plans: Iterable[FaultPlan]) -> FaultPlan:
    """Combine several plans into one schedule under a new seed label."""
    faults: list = []
    for plan in plans:
        faults.extend(plan.faults)
    faults.sort(key=lambda f: (f.at, f.index, f.kind, f.core))
    return FaultPlan(seed=seed, faults=tuple(faults))
