"""Fault injectors: apply a :class:`~repro.faults.plan.FaultPlan` to a tier.

Two injectors share the plan format:

- :class:`FaultInjector` drives the cycle tier
  (:class:`~repro.cpu.multicore.MultiCoreSystem`).  Message faults hook the
  per-core APIC's ``fault_interceptor``; scheduled faults go through the
  system timeline, **never** by mutating core state directly — both the
  naive and cycle-skipping engines process timeline events identically (the
  fast engine invalidates every core's quiescence horizon after any
  timeline event), which is what keeps fault runs byte-identical across
  engines.  The macro-op trace tier (``repro.cpu.macroop``) takes the same
  stance one level up: an installed ``fault_interceptor`` blocks macro
  formation outright, and the timeline (where scheduled faults live) is a
  hard replay horizon — replay can never jump over an injection cycle.
- :class:`EventFaultInjector` drives the event/kernel tier: the same
  message faults on a bare :class:`~repro.uintr.apic.LocalApic`, plus
  ``timer_drift`` on kernel timers and ``ctx_switch`` on a
  :class:`~repro.kernel.scheduler.CoreScheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro import obs as _obs
from repro.common.errors import ConfigError, SimulationError
from repro.faults.plan import CYCLE_TIER_KINDS, Fault, FaultPlan, MESSAGE_KINDS
from repro.uintr.apic import InterruptKind, LocalApic

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.multicore import MultiCoreSystem
    from repro.kernel.scheduler import CoreScheduler
    from repro.sim.simulator import Simulator


@dataclass
class InjectionCounters:
    """What the injector actually did (faults may never trigger if the run
    ends first — the counters make silent no-ops visible)."""

    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    redelivered: int = 0
    spurious: int = 0
    upid_stalls: int = 0
    timer_drifts: int = 0
    timer_drift_misses: int = 0
    misspec_storms: int = 0
    forced_preemptions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)

    def total(self) -> int:
        return sum(self.__dict__.values())


def _mark_fault(time: float, kind: str, **args) -> None:
    """Drop a structured marker on the ``faults`` track when observing."""
    if _obs.enabled:
        _obs.TRACER.instant(time, f"fault.{kind}", "faults", _obs.CAT_FAULT, **args)


class _MessageFaultTable:
    """Per-APIC interceptor state: accept-index -> action.

    Indices are 1-based over *intercepted* accepts (redeliveries via
    ``accept_now`` bypass the interceptor and therefore don't count, so a
    delayed message can't re-trigger its own fault).
    """

    def __init__(self, faults: List[Fault]) -> None:
        self.actions: Dict[int, Fault] = {}
        for f in faults:
            if f.index in self.actions:
                raise ConfigError(
                    f"two message faults target accept #{f.index} on core {f.core}"
                )
            self.actions[f.index] = f
        self.seen = 0


class FaultInjector:
    """Applies a plan to a cycle-tier :class:`MultiCoreSystem`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counters = InjectionCounters()
        self._installed = False

    def install(self, system: "MultiCoreSystem") -> "FaultInjector":
        """Wire interceptors and schedule timeline faults.  Call once,
        before ``system.run`` — scheduling is relative to the current
        cycle, so faults with ``at`` already past fire immediately."""
        if self._installed:
            raise SimulationError("FaultInjector.install called twice")
        self._installed = True
        ncores = len(system.cores)
        by_core_msgs: Dict[int, List[Fault]] = {}
        for fault in self.plan.faults:
            if fault.kind not in CYCLE_TIER_KINDS:
                raise ConfigError(
                    f"fault kind {fault.kind!r} is not supported in the cycle "
                    f"tier (use EventFaultInjector); cycle-tier kinds: "
                    f"{CYCLE_TIER_KINDS}"
                )
            if fault.core >= ncores:
                raise ConfigError(
                    f"fault targets core {fault.core} but the system has {ncores}"
                )
            if fault.kind in MESSAGE_KINDS:
                by_core_msgs.setdefault(fault.core, []).append(fault)
            else:
                self._schedule(system, fault)
        for core_id, faults in by_core_msgs.items():
            self._install_interceptor(system, core_id, faults)
        return self

    # -- message faults ----------------------------------------------------

    def _install_interceptor(
        self, system: "MultiCoreSystem", core_id: int, faults: List[Fault]
    ) -> None:
        apic = system.cores[core_id].apic
        if apic.fault_interceptor is not None:
            raise ConfigError(f"core {core_id} APIC already has a fault interceptor")
        table = _MessageFaultTable(faults)
        counters = self.counters

        def interceptor(
            vector: int, time: float, kind: Optional[InterruptKind]
        ) -> Optional[str]:
            table.seen += 1
            fault = table.actions.get(table.seen)
            if fault is None:
                return None
            if fault.kind == "drop_send":
                counters.dropped += 1
                _mark_fault(time, "drop_send", core=core_id, vector=vector)
                return "drop"
            if fault.kind == "dup_send":
                counters.duplicated += 1
                _mark_fault(time, "dup_send", core=core_id, vector=vector)
                return "duplicate"
            counters.delayed += 1
            _mark_fault(time, "delay_send", core=core_id, vector=vector, delay=fault.delay)

            def redeliver() -> None:
                counters.redelivered += 1
                _mark_fault(system.cycle, "redeliver", core=core_id, vector=vector)
                apic.accept_now(vector, system.cycle, kind)

            system.schedule(fault.delay, redeliver)
            return "defer"

        apic.fault_interceptor = interceptor

    # -- scheduled faults --------------------------------------------------

    def _schedule(self, system: "MultiCoreSystem", fault: Fault) -> None:
        delay = max(0, fault.at - system.cycle)
        core = system.cores[fault.core]
        counters = self.counters
        if fault.kind == "upid_stall":

            def stall() -> None:
                counters.upid_stalls += 1
                _mark_fault(system.cycle, "upid_stall", core=fault.core)
                core.hierarchy.dcache.flush()
                core.hierarchy.l2cache.flush()

            system.schedule(delay, stall)
        elif fault.kind == "spurious_uintr":

            def spurious() -> None:
                counters.spurious += 1
                _mark_fault(system.cycle, "spurious_uintr", core=fault.core)
                # A notification with nothing posted: the recognition
                # microcode runs against an empty PIR.
                core.apic.accept_now(
                    core.apic.uipi_notification_vector,
                    system.cycle,
                    InterruptKind.UIPI,
                )

            system.schedule(delay, spurious)
        elif fault.kind == "timer_drift":

            def drift() -> None:
                timer = core.uintr.kb_timer
                if timer.enabled and timer.armed:
                    counters.timer_drifts += 1
                    _mark_fault(system.cycle, "timer_drift", core=fault.core, delay=fault.delay)
                    timer.deadline += fault.delay
                else:
                    counters.timer_drift_misses += 1

            system.schedule(delay, drift)
        elif fault.kind == "misspec_storm":

            def storm() -> None:
                counters.misspec_storms += 1
                _mark_fault(system.cycle, "misspec_storm", core=fault.core)
                gshare = core.predictor.gshare
                # Invert every 2-bit counter: taken <-> not-taken.
                gshare._table = [3 - c for c in gshare._table]
                btb = core.predictor.btb
                btb._tags = [None] * len(btb._tags)

            system.schedule(delay, storm)
        else:  # pragma: no cover - guarded in install()
            raise ConfigError(f"unschedulable fault kind {fault.kind!r}")


@dataclass
class EventTierTargets:
    """What the event/kernel-tier injector can act on.  Any field may stay
    None — faults needing an absent target raise ConfigError at install."""

    sim: "Simulator" = None
    apic: Optional[LocalApic] = None
    scheduler: Optional["CoreScheduler"] = None
    #: Objects exposing ``delay_next_fire(extra)`` (kernel/KB timers).
    timers: List[object] = field(default_factory=list)


class EventFaultInjector:
    """Applies a plan in the event tier (kernel model + calendar queue).

    ``at`` is event-tier time; core indices select a timer from
    ``targets.timers`` for ``timer_drift`` and are otherwise ignored
    (the event tier models one APIC/scheduler per injector).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counters = InjectionCounters()
        self._installed = False

    def install(self, targets: EventTierTargets) -> "EventFaultInjector":
        if self._installed:
            raise SimulationError("EventFaultInjector.install called twice")
        self._installed = True
        sim = targets.sim
        if sim is None:
            raise ConfigError("EventTierTargets.sim is required")
        msg_faults: List[Fault] = []
        for fault in self.plan.faults:
            if fault.kind in MESSAGE_KINDS:
                if targets.apic is None:
                    raise ConfigError(f"{fault.kind} needs an APIC target")
                msg_faults.append(fault)
            elif fault.kind == "ctx_switch":
                if targets.scheduler is None:
                    raise ConfigError("ctx_switch needs a scheduler target")
                self._schedule_preempt(sim, targets.scheduler, fault)
            elif fault.kind == "timer_drift":
                if not targets.timers:
                    raise ConfigError("timer_drift needs at least one timer target")
                self._schedule_drift(sim, targets.timers, fault)
            elif fault.kind == "spurious_uintr":
                if targets.apic is None:
                    raise ConfigError("spurious_uintr needs an APIC target")
                self._schedule_spurious(sim, targets.apic, fault)
            else:
                raise ConfigError(
                    f"fault kind {fault.kind!r} has no event-tier model "
                    f"(use the cycle-tier FaultInjector)"
                )
        if msg_faults:
            self._install_interceptor(sim, targets.apic, msg_faults)
        return self

    def _install_interceptor(
        self, sim: "Simulator", apic: LocalApic, faults: List[Fault]
    ) -> None:
        if apic.fault_interceptor is not None:
            raise ConfigError("APIC already has a fault interceptor")
        table = _MessageFaultTable(faults)
        counters = self.counters

        def interceptor(
            vector: int, time: float, kind: Optional[InterruptKind]
        ) -> Optional[str]:
            table.seen += 1
            fault = table.actions.get(table.seen)
            if fault is None:
                return None
            if fault.kind == "drop_send":
                counters.dropped += 1
                _mark_fault(time, "drop_send", vector=vector)
                return "drop"
            if fault.kind == "dup_send":
                counters.duplicated += 1
                _mark_fault(time, "dup_send", vector=vector)
                return "duplicate"
            counters.delayed += 1
            _mark_fault(time, "delay_send", vector=vector, delay=fault.delay)

            def redeliver() -> None:
                counters.redelivered += 1
                _mark_fault(sim.now, "redeliver", vector=vector)
                apic.accept_now(vector, sim.now, kind)

            sim.schedule(fault.delay, redeliver, name="fault_redeliver")
            return "defer"

        apic.fault_interceptor = interceptor

    def _schedule_preempt(
        self, sim: "Simulator", scheduler: "CoreScheduler", fault: Fault
    ) -> None:
        counters = self.counters

        def preempt() -> None:
            counters.forced_preemptions += 1
            _mark_fault(sim.now, "ctx_switch", core=fault.core)
            scheduler.fault_preempt(sim.now)

        sim.schedule_at(max(sim.now, fault.at), preempt, name="fault_preempt")

    def _schedule_drift(
        self, sim: "Simulator", timers: List[object], fault: Fault
    ) -> None:
        timer = timers[fault.core % len(timers)]
        counters = self.counters

        def drift() -> None:
            if timer.delay_next_fire(fault.delay):
                counters.timer_drifts += 1
            else:
                counters.timer_drift_misses += 1

        sim.schedule_at(max(sim.now, fault.at), drift, name="fault_drift")

    def _schedule_spurious(
        self, sim: "Simulator", apic: LocalApic, fault: Fault
    ) -> None:
        counters = self.counters

        def spurious() -> None:
            counters.spurious += 1
            apic.accept_now(
                apic.uipi_notification_vector, sim.now, InterruptKind.UIPI
            )

        sim.schedule_at(max(sim.now, fault.at), spurious, name="fault_spurious")
