"""The Aspen-like preemptive runtime on the event tier (§5.3, §6.2.1).

Worker cores run user threads in quanta.  At every quantum boundary the
preemption notification fires: its receiver-side cost is charged to the
worker (this is where UIPI at ~645 cycles vs. xUI KB timer + tracking at
~105 cycles differ), and if other threads are waiting the current thread is
rotated to the back of the queue (plus a user-level context switch).  With
no preemption, threads run to completion — the head-of-line blocking that
destroys GET tail latency in Figure 7.

Mechanism differences (§6.1, Figure 6):

- ``UIPI`` / ``XUI_TRACKED_IPI``: need a *time source* — a dedicated core
  spinning on rdtsc that senduipi's every worker each quantum.  The runtime
  accounts that core's utilization and enforces its fan-out capacity.
- ``XUI_KB_TIMER``: each worker's own kernel-bypass timer fires locally;
  no timer core at all.
- ``None`` (no preemption): run to completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigError, SimulationError
from repro.common.rng import RngStreams
from repro.notify.costs import CostModel
from repro.notify.mechanisms import Mechanism
from repro.runtime.uthread import UThread
from repro.runtime.workqueue import WorkQueue
from repro.sim.account import CycleAccount
from repro.sim.event import Event
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class RuntimeConfig:
    """Configuration of the runtime for one experiment run."""

    num_workers: int = 1
    #: Preemption quantum in cycles (None disables preemption).
    quantum: Optional[float] = 10_000.0  # 5 us at 2 GHz
    mechanism: Optional[Mechanism] = Mechanism.XUI_KB_TIMER
    work_stealing: bool = True

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ConfigError("num_workers must be positive")
        if self.quantum is not None and self.quantum <= 0:
            raise ConfigError("quantum must be positive (or None)")
        if self.quantum is not None and self.mechanism is None:
            raise ConfigError("preemption requires a notification mechanism")


class WorkerCore:
    """One worker: executes threads; a wall-clock tick preempts each quantum.

    The preemption notification is periodic in *wall-clock* time (the timer
    core or KB timer fires every quantum no matter what is running), so the
    receiver cost is charged at every tick — this is exactly the Figure 4
    overhead (645 cycles/5 us for UIPI vs. 105 for xUI) showing up as lost
    worker capacity in Figure 7.
    """

    def __init__(
        self,
        runtime: "AspenRuntime",
        core_id: int,
    ) -> None:
        self.runtime = runtime
        self.core_id = core_id
        self.queue = WorkQueue(core_id)
        self.account = CycleAccount(name=f"worker{core_id}")
        self.current: Optional[UThread] = None
        self._completion_event: Optional[Event] = None
        self._slice_started = 0.0
        self._resume_pending = False
        self.idle_since: Optional[float] = 0.0
        self.idle_cycles = 0.0
        self.preemption_events = 0
        self.ticks = 0
        self._tick_event: Optional[Event] = None
        self._stopped = False
        if runtime.config.quantum is not None:
            self._tick_event = runtime.sim.schedule(
                runtime.config.quantum, self._tick, name=f"tick:w{core_id}"
            )

    def stop_ticks(self) -> None:
        """Stop the periodic preemption tick (ends the simulation cleanly)."""
        self._stopped = True
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    # ------------------------------------------------------------------

    def enqueue(self, thread: UThread) -> None:
        self.queue.push(thread)
        if self.current is None and not self._resume_pending:
            self._dispatch()

    def _dispatch(self) -> None:
        """Pick the next thread (local queue, then stealing) and run it."""
        self._resume_pending = False
        thread = self.queue.pop()
        if thread is None and self.runtime.config.work_stealing:
            thread = self.runtime.steal_for(self)
        if thread is None:
            if self.idle_since is None:
                self.idle_since = self.runtime.sim.now
            return
        if self.idle_since is not None:
            self.idle_cycles += self.runtime.sim.now - self.idle_since
            self.idle_since = None
        self._run(thread)

    def _run(self, thread: UThread) -> None:
        sim = self.runtime.sim
        if thread.start_time is None:
            thread.start_time = sim.now
        self.current = thread
        self._slice_started = sim.now
        self._completion_event = sim.schedule(
            thread.remaining, self._complete, name=f"complete:w{self.core_id}"
        )

    def _complete(self) -> None:
        sim = self.runtime.sim
        thread = self.current
        if thread is None:
            raise SimulationError("completion with no current thread")
        used = thread.run_for(sim.now - self._slice_started)
        self.account.charge("app", used)
        self.current = None
        self._completion_event = None
        thread.completion_time = sim.now
        self.runtime.completed.append(thread)
        self._dispatch()

    def _tick(self) -> None:
        """The periodic preemption notification (timer core / KB timer)."""
        if self._stopped:
            return
        sim = self.runtime.sim
        self.ticks += 1
        self._tick_event = sim.schedule(
            self.runtime.config.quantum, self._tick, name=f"tick:w{self.core_id}"
        )
        overhead = self.runtime.preemption_overhead()
        self.preemption_events += 1
        self.account.charge("preempt_notify", overhead)
        thread = self.current
        if thread is None:
            # Interrupted while idle (or mid-switch): only the receiver
            # cost is paid; an idle worker uses the tick to look for work
            # to steal.
            if not self._resume_pending:
                self._dispatch()
            return
        # Preempt the running thread: bank its progress and rotate.
        self._completion_event.cancel()
        self._completion_event = None
        used = thread.run_for(sim.now - self._slice_started)
        self.account.charge("app", used)
        self.current = None
        thread.preemptions += 1
        if thread.finished:
            thread.completion_time = sim.now
            self.runtime.completed.append(thread)
            resume_delay = overhead
        elif len(self.queue) > 0 or self.runtime.has_stealable_work(self):
            switch = self.runtime.costs.uthread_switch
            self.account.charge("uthread_switch", switch)
            self.queue.push(thread)
            resume_delay = overhead + switch
        else:
            self.queue.push_front(thread)
            resume_delay = overhead
        self._resume_pending = True
        sim.schedule(resume_delay, self._dispatch, name=f"resume:w{self.core_id}")

    # ------------------------------------------------------------------

    def utilization(self, elapsed: float) -> float:
        return self.account.busy_fraction(elapsed)


class AspenRuntime:
    """The runtime: workers, work stealing, and the preemption time source."""

    def __init__(
        self,
        sim: Simulator,
        config: RuntimeConfig,
        costs: Optional[CostModel] = None,
        rng: Optional[RngStreams] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.costs = costs or CostModel.paper_defaults()
        self.rng = rng or RngStreams(seed=0)
        self.workers: List[WorkerCore] = [
            WorkerCore(self, core_id) for core_id in range(config.num_workers)
        ]
        self.completed: List[UThread] = []
        self._spawn_rr = 0
        self._stopped = False
        self._timer_core_event = None
        #: Dedicated timer-core accounting (UIPI-style mechanisms only).
        self.timer_core: Optional[CycleAccount] = None
        if (
            config.quantum is not None
            and config.mechanism is not None
            and config.mechanism.needs_timer_core
        ):
            self.timer_core = CycleAccount(name="timer_core")
            self._check_timer_capacity()
            self._start_timer_core()

    # -- preemption time source ------------------------------------------

    def _check_timer_capacity(self) -> None:
        capacity = self.costs.timer_core_capacity(self.config.quantum)
        if self.config.num_workers > capacity:
            raise ConfigError(
                f"a single rdtsc-spin timer core supports at most {capacity} "
                f"workers at a {self.config.quantum:.0f}-cycle quantum "
                f"(requested {self.config.num_workers}); see §6.1"
            )

    def _start_timer_core(self) -> None:
        """Account the dedicated timer core: it burns the whole core (rdtsc
        spin) and spends senduipi cycles per worker per quantum."""

        def tick() -> None:
            if self._stopped:
                return
            per_worker = self.costs.senduipi + self.costs.timer_core_loop_overhead
            send_cycles = per_worker * len(self.workers)
            self.timer_core.charge("senduipi", send_cycles)
            self.timer_core.charge("spin", max(0.0, self.config.quantum - send_cycles))
            self._timer_core_event = self.sim.schedule(self.config.quantum, tick, name="timer_core")

        self._timer_core_event = self.sim.schedule(self.config.quantum, tick, name="timer_core")

    def stop(self) -> None:
        """Stop all periodic machinery so an unbounded sim.run() can drain."""
        self._stopped = True
        for worker in self.workers:
            worker.stop_ticks()
        if self._timer_core_event is not None:
            self._timer_core_event.cancel()
            self._timer_core_event = None

    def preemption_overhead(self) -> float:
        """Receiver-side cost of one preemption notification."""
        mechanism = self.config.mechanism
        if mechanism is None:
            return 0.0
        return self.costs.preemption_cost(mechanism)

    # -- spawning / stealing ------------------------------------------------

    def spawn(self, thread: UThread) -> None:
        """Submit a thread; round-robin placement across workers."""
        worker = self.workers[self._spawn_rr % len(self.workers)]
        self._spawn_rr += 1
        worker.enqueue(thread)

    def steal_for(self, thief: WorkerCore) -> Optional[UThread]:
        """Steal one thread for ``thief`` from a random victim."""
        candidates = [w for w in self.workers if w is not thief and len(w.queue) > 0]
        if not candidates:
            return None
        victim = candidates[self.rng.choice_index("steal", len(candidates))]
        stolen = victim.queue.steal()
        if stolen is not None:
            stolen.steals += 1
        return stolen

    def has_stealable_work(self, thief: WorkerCore) -> bool:
        return any(w is not thief and len(w.queue) > 0 for w in self.workers)

    # -- results ---------------------------------------------------------------

    def response_times(self, kind: Optional[str] = None) -> List[float]:
        return [
            t.response_time
            for t in self.completed
            if kind is None or t.kind == kind
        ]

    def total_queued(self) -> int:
        running = sum(1 for w in self.workers if w.current is not None)
        return running + sum(len(w.queue) for w in self.workers)
