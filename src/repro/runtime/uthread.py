"""User-level threads: the unit of work the runtime schedules."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigError

_uthread_ids = itertools.count(1)

#: Residual work below this is rounding noise from event-time arithmetic —
#: treat the thread as finished rather than scheduling sub-cycle slices.
WORK_EPSILON = 1e-6


@dataclass
class UThread:
    """A user-level thread with a known service demand (in cycles).

    The event tier models a thread's computation as a cycle budget rather
    than instructions; ``remaining`` counts down as worker cores run it.
    """

    service_cycles: float
    name: str = ""
    kind: str = "request"
    arrival_time: float = 0.0
    uid: int = field(default_factory=lambda: next(_uthread_ids))
    remaining: float = field(init=False)
    start_time: Optional[float] = None
    completion_time: Optional[float] = None
    preemptions: int = 0
    steals: int = 0

    def __post_init__(self) -> None:
        if self.service_cycles <= 0:
            raise ConfigError(f"service_cycles must be positive, got {self.service_cycles}")
        self.remaining = float(self.service_cycles)
        if not self.name:
            self.name = f"uthread-{self.uid}"

    @property
    def finished(self) -> bool:
        return self.remaining <= WORK_EPSILON

    @property
    def response_time(self) -> float:
        """Sojourn time: arrival to completion."""
        if self.completion_time is None:
            raise ConfigError(f"{self.name} has not completed")
        return self.completion_time - self.arrival_time

    def run_for(self, cycles: float) -> float:
        """Consume up to ``cycles`` of service demand; return cycles used."""
        used = min(cycles, self.remaining)
        self.remaining -= used
        return used
