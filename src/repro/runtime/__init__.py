"""An Aspen-like user-level runtime (§5.3): lightweight threads, work
stealing, and preemptive scheduling driven by user interrupts.

The runtime runs on the event tier.  Worker cores execute user-level threads
in quanta; at each quantum boundary the configured notification mechanism's
receiver cost is charged (UIPI flush, xUI tracked + KB timer, or none), and
the thread is rotated to the back of the run queue.  UIPI-based preemption
additionally requires a dedicated timer core as its time source (§2, §6.1);
the xUI KB timer does not.
"""

from repro.runtime.uthread import UThread
from repro.runtime.workqueue import WorkQueue
from repro.runtime.aspen import AspenRuntime, WorkerCore, RuntimeConfig

__all__ = ["UThread", "WorkQueue", "AspenRuntime", "WorkerCore", "RuntimeConfig"]
