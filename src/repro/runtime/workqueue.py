"""Per-core run queues with work stealing (§5.3).

Aspen balances threads across cores by work stealing: owners push and pop at
the tail (LIFO keeps caches warm), thieves steal from the head (the oldest,
coldest work).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.runtime.uthread import UThread


class WorkQueue:
    """A deque-based work-stealing queue."""

    def __init__(self, owner_id: int) -> None:
        self.owner_id = owner_id
        self._queue: Deque[UThread] = deque()
        self.pushes = 0
        self.steals_suffered = 0

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, thread: UThread) -> None:
        self.pushes += 1
        self._queue.append(thread)

    def push_front(self, thread: UThread) -> None:
        """Return a preempted thread to the *head* so round-robin rotation
        comes back to it after one pass."""
        self._queue.appendleft(thread)

    def pop(self) -> Optional[UThread]:
        """Owner-side pop (FIFO here: preemptive round-robin wants the
        oldest runnable thread next, not the newest)."""
        if self._queue:
            return self._queue.popleft()
        return None

    def steal(self) -> Optional[UThread]:
        """Thief-side steal from the head (oldest work)."""
        if self._queue:
            self.steals_suffered += 1
            return self._queue.popleft()
        return None
