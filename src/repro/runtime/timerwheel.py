"""Software timers multiplexed on one hardware timer (§2, §4.3).

User-level runtimes need *many* concurrent timeouts (request deadlines,
retransmits, scheduling quanta) but get few hardware timers.  The classic
answer is a software timer facility driven by one hardware timer — and §4.3
designs the KB timer's one-shot mode for exactly this: "in keeping with the
traditional APIC design that makes it simple to specify the next deadline
when implementing multiple software timers."

:class:`SoftwareTimerService` keeps a deadline heap and drives it two ways:

- ``ONE_SHOT``: arm the hardware timer for the earliest deadline, re-arm on
  every change — precise, one hardware fire per (batch of) expiries;
- ``PERIODIC``: a fixed-resolution tick sweeps the heap — fewer re-arms,
  but expiry precision is bounded by the resolution.

The hardware-timer cost per fire comes from the cost model: the xUI KB
timer (105 cycles, user-programmable re-arm) vs. an OS interval timer
(signal-priced ticks with a ~2 µs floor).
"""

from __future__ import annotations

import heapq
import itertools
from enum import Enum
from typing import Callable, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.notify.costs import CostModel
from repro.notify.mechanisms import Mechanism
from repro.sim.account import CycleAccount
from repro.sim.event import Event
from repro.sim.simulator import Simulator


class TimerMode(Enum):
    ONE_SHOT = "one_shot"
    PERIODIC = "periodic"


class TimeoutHandle:
    """A cancellable scheduled timeout."""

    __slots__ = ("deadline", "seq", "callback", "cancelled", "fired")

    def __init__(self, deadline: float, seq: int, callback: Callable[[], None]) -> None:
        self.deadline = deadline
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> bool:
        """Cancel if not yet fired; returns whether the cancel took effect."""
        if self.fired or self.cancelled:
            return False
        self.cancelled = True
        return True


class SoftwareTimerService:
    """Many software timeouts on one hardware timer."""

    def __init__(
        self,
        sim: Simulator,
        mode: TimerMode = TimerMode.ONE_SHOT,
        mechanism: Mechanism = Mechanism.XUI_KB_TIMER,
        resolution: float = 4000.0,
        costs: Optional[CostModel] = None,
        account: Optional[CycleAccount] = None,
    ) -> None:
        if mechanism not in (Mechanism.XUI_KB_TIMER, Mechanism.PERIODIC_POLL):
            raise ConfigError(
                "software timers are driven by the KB timer or an OS interval timer"
            )
        if resolution <= 0:
            raise ConfigError("resolution must be positive")
        self.sim = sim
        self.mode = mode
        self.mechanism = mechanism
        self.costs = costs or CostModel.paper_defaults()
        self.account = account or CycleAccount(name="timer_service")
        if mechanism is Mechanism.PERIODIC_POLL:
            # The OS interval timer cannot tick faster than its floor (§2).
            resolution = max(resolution, self.costs.os_timer_min_period)
        self.resolution = resolution
        self._heap: List[Tuple[float, int, TimeoutHandle]] = []
        self._seq = itertools.count()
        self._hw_event: Optional[Event] = None
        self._hw_armed_for: Optional[float] = None
        self.hardware_fires = 0
        self.timeouts_fired = 0
        if mode is TimerMode.PERIODIC:
            self._arm_hardware(self.sim.now + self.resolution)

    # -- cost accounting -----------------------------------------------------

    @property
    def _fire_cost(self) -> float:
        if self.mechanism is Mechanism.XUI_KB_TIMER:
            return self.costs.timer_receive_tracked
        return self.costs.setitimer_event

    @property
    def _rearm_cost(self) -> float:
        # set_timer is a user-level instruction (§4.3); re-arming an OS
        # timer is a syscall.
        if self.mechanism is Mechanism.XUI_KB_TIMER:
            return 20.0
        return self.costs.nanosleep_event / 2

    # -- public API ------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimeoutHandle:
        """Schedule ``callback`` after ``delay`` cycles."""
        if delay < 0:
            raise ConfigError("timeout delay must be non-negative")
        handle = TimeoutHandle(self.sim.now + delay, next(self._seq), callback)
        heapq.heappush(self._heap, (handle.deadline, handle.seq, handle))
        if self.mode is TimerMode.ONE_SHOT:
            self._maybe_rearm()
        return handle

    def pending(self) -> int:
        return sum(1 for _, _, h in self._heap if not (h.cancelled or h.fired))

    def next_deadline(self) -> Optional[float]:
        self._drop_dead_head()
        return self._heap[0][0] if self._heap else None

    # -- hardware-timer plumbing --------------------------------------------

    def _drop_dead_head(self) -> None:
        while self._heap and (self._heap[0][2].cancelled or self._heap[0][2].fired):
            heapq.heappop(self._heap)

    def _maybe_rearm(self) -> None:
        """ONE_SHOT: keep the hardware timer armed for the earliest deadline."""
        deadline = self.next_deadline()
        if deadline is None:
            if self._hw_event is not None:
                self._hw_event.cancel()
                self._hw_event = None
                self._hw_armed_for = None
            return
        if self._hw_armed_for is not None and self._hw_armed_for <= deadline:
            return  # already armed early enough
        if self._hw_event is not None:
            self._hw_event.cancel()
        self.account.charge("rearm", self._rearm_cost)
        self._arm_hardware(max(deadline, self.sim.now))

    def _arm_hardware(self, at_time: float) -> None:
        self._hw_armed_for = at_time
        self._hw_event = self.sim.schedule_at(at_time, self._hardware_fire, name="sw_timer_hw")

    def _hardware_fire(self) -> None:
        self.hardware_fires += 1
        self._hw_event = None
        self._hw_armed_for = None
        self.account.charge("hw_fire", self._fire_cost)
        self._expire_due()
        if self.mode is TimerMode.PERIODIC:
            self._arm_hardware(self.sim.now + self.resolution)
        else:
            self._maybe_rearm()

    def _expire_due(self) -> None:
        now = self.sim.now
        while True:
            self._drop_dead_head()
            if not self._heap or self._heap[0][0] > now:
                return
            _, _, handle = heapq.heappop(self._heap)
            handle.fired = True
            self.timeouts_fired += 1
            handle.callback()
