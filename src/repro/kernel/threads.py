"""Kernel threads and the per-thread user-interrupt state the OS manages.

On a context switch the kernel must (§3.2, §4.3, §4.5):

- set the SN (suppress notification) bit in the outgoing thread's UPID so
  senders stop sending IPIs at a descheduled thread;
- save the outgoing thread's KB-timer state (deadline/vector/period/mode)
  read from ``kb_timer_state_MSR`` and restore the incoming thread's;
- write the incoming thread's 256-bit forwarded-vector mask into the local
  APIC's ``forwarded_active`` register;
- on resume, check for interrupts captured on the slow path (UPID PIR set
  while descheduled, a DUPID posting, or an expired KB timer) and repost
  them as self-interrupts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.cpu.uintr_state import KBTimerState

_thread_ids = itertools.count(1)


class ThreadState(Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    FINISHED = "finished"


@dataclass(slots=True)
class KernelThread:
    """One kernel thread (pthread) with its user-interrupt kernel state."""

    name: str = ""
    tid: int = field(default_factory=lambda: next(_thread_ids))
    state: ThreadState = ThreadState.READY
    #: Address of this thread's UPID (None until register_handler).
    upid_addr: Optional[int] = None
    #: Address of this thread's DUPID for forwarded-device slow paths (§4.5).
    dupid_addr: Optional[int] = None
    #: Saved KB-timer state while descheduled (§4.3 multiplexing).
    saved_kb_timer: Optional[KBTimerState] = None
    #: 256-bit mask of conventional vectors forwarded to this thread (§4.5).
    forwarded_vectors: int = 0
    #: User vectors captured by the kernel while this thread was descheduled,
    #: to be reposted as self-interrupts on resume (the UIPI slow path).
    pending_slow_path: List[int] = field(default_factory=list)
    #: True if the thread's KB timer expired while it was descheduled.
    kb_timer_expired_while_out: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"thread-{self.tid}"
