"""The OS model (event tier): threads, scheduling, signals, timers, syscalls.

The experiments exercise the kernel through a narrow interface — context
switches with their UIPI/xUI state management (SN bit, KB-timer save/restore,
``forwarded_active``), signal delivery costs, the ``setitimer``/``nanosleep``
timer interfaces, and the §3.2/§4.3/§4.5 registration syscalls — so that is
what this package models, with costs from :class:`repro.notify.CostModel`.
"""

from repro.kernel.threads import KernelThread, ThreadState
from repro.kernel.scheduler import CoreScheduler
from repro.kernel.signals import SignalDelivery
from repro.kernel.timers import OSIntervalTimer, NanosleepTimer
from repro.kernel.syscalls import KernelInterface

__all__ = [
    "KernelThread",
    "ThreadState",
    "CoreScheduler",
    "SignalDelivery",
    "OSIntervalTimer",
    "NanosleepTimer",
    "KernelInterface",
]
