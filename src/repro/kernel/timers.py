"""OS timer interfaces: ``setitimer`` and ``nanosleep`` loops (§2, Figure 6).

Both give a thread a periodic tick, and both go through the kernel:

- :class:`OSIntervalTimer` (``setitimer``): the kernel's timer interrupt
  fires, and the tick reaches the thread as a *signal* — each tick costs
  the full signal path.
- :class:`NanosleepTimer`: the thread sleeps and is woken each period —
  two kernel transitions per tick (block + wake), cheaper than a signal but
  still microseconds of kernel time.

The xUI KB timer (§4.3) replaces both with a 105-cycle user-level delivery
and needs no timer thread at all.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.errors import ConfigError
from repro.notify.costs import CostModel
from repro.sim.account import CycleAccount
from repro.sim.event import Event
from repro.sim.simulator import Simulator


class _PeriodicTimer:
    """Shared machinery: fire ``callback`` every ``period``, charging
    ``per_event_cost`` to the owner's account first."""

    category = "os_timer"

    def __init__(
        self,
        sim: Simulator,
        account: CycleAccount,
        period: float,
        callback: Callable[[], None],
        per_event_cost: float,
        min_period: float,
    ) -> None:
        if period <= 0:
            raise ConfigError(f"timer period must be positive, got {period}")
        self.sim = sim
        self.account = account
        #: The OS cannot deliver ticks faster than its timer resolution.
        self.period = max(period, min_period)
        self.requested_period = period
        self.callback = callback
        self.per_event_cost = per_event_cost
        self.fires = 0
        #: Ticks postponed by :meth:`delay_next_fire` (fault injection).
        self.fault_delays = 0
        self._armed = False
        self._next_event: Optional[Event] = None

    def start(self) -> None:
        if self._armed:
            return
        self._armed = True
        self._schedule_next()

    def stop(self) -> None:
        self._armed = False
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None

    def _schedule_next(self) -> None:
        self._next_event = self.sim.schedule(self.period, self._fire, name="os_timer")

    def delay_next_fire(self, extra: float) -> bool:
        """Fault injection: push the next scheduled tick ``extra`` later.

        Models a late-firing OS timer (interrupt coalescing, a busy kernel).
        Only the next tick drifts — the following reschedule is relative to
        the drifted fire time, so the lateness propagates naturally, exactly
        as a real periodic rearm-on-fire timer behaves.  Returns False when
        no tick was armed to delay.
        """
        postponed = self.sim.postpone(self._next_event, extra)
        if postponed is None:
            return False
        self._next_event = postponed
        self.fault_delays += 1
        return True

    def _fire(self) -> None:
        if not self._armed:
            return
        self.fires += 1
        self.account.charge(self.category, self.per_event_cost)
        self._schedule_next()
        self.callback()


class OSIntervalTimer(_PeriodicTimer):
    """``setitimer()``: a signal per tick (§2 "Timers: expensive and complex")."""

    category = "setitimer"

    def __init__(
        self,
        sim: Simulator,
        account: CycleAccount,
        period: float,
        callback: Callable[[], None],
        costs: Optional[CostModel] = None,
    ) -> None:
        costs = costs or CostModel.paper_defaults()
        super().__init__(
            sim,
            account,
            period,
            callback,
            per_event_cost=costs.setitimer_event,
            min_period=costs.os_timer_min_period,
        )


class NanosleepTimer(_PeriodicTimer):
    """``nanosleep()`` in a loop: sleep/wake kernel transitions per tick."""

    category = "nanosleep"

    def __init__(
        self,
        sim: Simulator,
        account: CycleAccount,
        period: float,
        callback: Callable[[], None],
        costs: Optional[CostModel] = None,
    ) -> None:
        costs = costs or CostModel.paper_defaults()
        super().__init__(
            sim,
            account,
            period,
            callback,
            per_event_cost=costs.nanosleep_event,
            min_period=costs.os_timer_min_period,
        )


class KBTimer:
    """The xUI kernel-bypass timer in the event tier (§4.3).

    Directly user-programmable, per-core, fires as a tracked user interrupt
    costing ``timer_receive_tracked`` cycles on the receiving core — no
    timer thread, no kernel transitions.
    """

    category = "kb_timer"

    def __init__(
        self,
        sim: Simulator,
        account: CycleAccount,
        period: float,
        callback: Callable[[], None],
        costs: Optional[CostModel] = None,
    ) -> None:
        if period <= 0:
            raise ConfigError(f"timer period must be positive, got {period}")
        self.sim = sim
        self.account = account
        self.period = period
        self.callback = callback
        self.costs = costs or CostModel.paper_defaults()
        self.fires = 0
        #: Ticks postponed by :meth:`delay_next_fire` (fault injection).
        self.fault_delays = 0
        self._armed = False
        self._next_event: Optional[Event] = None

    def start(self) -> None:
        if self._armed:
            return
        self._armed = True
        self._next_event = self.sim.schedule(self.period, self._fire, name="kb_timer")

    def delay_next_fire(self, extra: float) -> bool:
        """Fault injection: push the next tick ``extra`` later (drift).

        Even the kernel-bypass timer can fire late in hardware (clock
        domain crossings, power states); this models that.  Returns False
        when no tick was armed."""
        postponed = self.sim.postpone(self._next_event, extra)
        if postponed is None:
            return False
        self._next_event = postponed
        self.fault_delays += 1
        return True

    def stop(self) -> None:
        self._armed = False
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None

    def _fire(self) -> None:
        if not self._armed:
            return
        self.fires += 1
        self.account.charge(self.category, self.costs.timer_receive_tracked)
        self._next_event = self.sim.schedule(self.period, self._fire, name="kb_timer")
        self.callback()
