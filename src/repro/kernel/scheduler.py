"""Per-core kernel scheduling with user-interrupt state management.

:class:`CoreScheduler` models what the kernel does on each context switch —
the part of UIPI/xUI that *must* stay in the kernel (§3.2 "the kernel sets
the SN bit", §4.3 "it is up to the kernel to manage the timer state", §4.5
"this vector is written to forwarded_active when a thread resumes").  The
Figure 7 runtime pins one kernel thread per core, so this machinery is
mostly exercised by tests and the slow-path experiments, but it is the part
a real deployment depends on for correctness.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro import obs as _obs
from repro.common.errors import SimulationError
from repro.cpu.cache import SharedMemory
from repro.cpu.uintr_state import KBTimerState
from repro.kernel.threads import KernelThread, ThreadState
from repro.notify.costs import CostModel
from repro.sim.account import CycleAccount
from repro.uintr.apic import LocalApic
from repro.uintr.upid import UPID


class CoreScheduler:
    """Round-robin kernel scheduler for one core.

    The scheduler owns the core's physical KB timer (a :class:`KBTimerState`)
    and the local APIC's forwarding registers, multiplexing both among the
    threads it runs.
    """

    def __init__(
        self,
        core_id: int,
        memory: SharedMemory,
        apic: LocalApic,
        costs: Optional[CostModel] = None,
        account: Optional[CycleAccount] = None,
        eager_timer_rescheduling: bool = False,
    ) -> None:
        self.core_id = core_id
        self.memory = memory
        self.apic = apic
        self.costs = costs or CostModel.paper_defaults()
        self.account = account or CycleAccount(name=f"core{core_id}")
        self.run_queue: Deque[KernelThread] = deque()
        self.current: Optional[KernelThread] = None
        #: The physical per-core KB timer (§4.3: one per physical core).
        self.kb_timer = KBTimerState()
        #: §4.3's alternative slow path: "the kernel could also continue
        #: tracking the timer using a kernel timer while the thread is not
        #: running, and immediately reschedule the thread when the timer
        #: expires."  When enabled, schedule_next prefers descheduled
        #: threads whose saved deadline has passed.
        self.eager_timer_rescheduling = eager_timer_rescheduling
        self.context_switches = 0
        self.slow_path_reposts = 0
        self.eager_wakes = 0
        #: Context switches forced by fault injection (``fault_preempt``).
        self.forced_preemptions = 0

    # ------------------------------------------------------------------

    def add_thread(self, thread: KernelThread) -> None:
        thread.state = ThreadState.READY
        self.run_queue.append(thread)

    def _upid(self, thread: KernelThread) -> Optional[UPID]:
        if thread.upid_addr is None:
            return None
        return UPID(self.memory, thread.upid_addr)

    # ------------------------------------------------------------------

    def deschedule_current(self, now: float) -> Optional[KernelThread]:
        """Context-switch the running thread out (kernel side)."""
        thread = self.current
        if thread is None:
            return None
        upid = self._upid(thread)
        if upid is not None:
            # Stop senders from IPI-ing a thread that is not running.
            upid.set_suppressed(True)
        # Save the KB timer by reading kb_timer_state_MSR (§4.3).
        thread.saved_kb_timer = self.kb_timer.save()
        self.kb_timer.enabled = False
        self.kb_timer.disarm()
        # The next thread's mask is written at resume; clear for now.
        self.apic.set_active_vectors(0)
        thread.state = ThreadState.READY
        self.current = None
        self.run_queue.append(thread)
        if _obs.enabled:
            _obs.TRACER.instant(
                now, "sched.switch_out", f"kernel.sched{self.core_id}",
                _obs.CAT_SCHED, thread=thread.name,
            )
        return thread

    def schedule_next(self, now: float) -> Optional[KernelThread]:
        """Pick the next READY thread and context-switch it in.

        Returns the thread now running (None if the queue is empty).  The
        context-switch cost is charged to the core's account; slow-path
        interrupt reposts are detected here (§3.2: "when the kernel resumes
        the thread ... it will repost the captured UIPI as a self-UIPI").
        """
        if self.current is not None:
            raise SimulationError("schedule_next with a thread still running")
        if self.eager_timer_rescheduling:
            due = self._pop_timer_due_thread(now)
            if due is not None:
                self.eager_wakes += 1
                self._resume(due, now)
                return due
        while self.run_queue:
            thread = self.run_queue.popleft()
            if thread.state is ThreadState.FINISHED:
                continue
            self._resume(thread, now)
            return thread
        return None

    def _pop_timer_due_thread(self, now: float) -> Optional[KernelThread]:
        """The queued thread with the earliest expired saved KB-timer
        deadline (the kernel's surrogate timer fired for it)."""
        best: Optional[KernelThread] = None
        for thread in self.run_queue:
            saved = thread.saved_kb_timer
            if (
                thread.state is not ThreadState.FINISHED
                and saved is not None
                and saved.enabled
                and saved.armed
                and saved.deadline <= now
            ):
                if best is None or saved.deadline < best.saved_kb_timer.deadline:
                    best = thread
        if best is not None:
            self.run_queue.remove(best)
        return best

    def _resume(self, thread: KernelThread, now: float) -> None:
        self.context_switches += 1
        self.account.charge("context_switch", self.costs.kthread_switch)
        thread.state = ThreadState.RUNNING
        self.current = thread
        if _obs.enabled:
            _obs.TRACER.instant(
                now, "sched.switch_in", f"kernel.sched{self.core_id}",
                _obs.CAT_SCHED, thread=thread.name,
            )
        upid = self._upid(thread)
        if upid is not None:
            upid.set_suppressed(False)
            # Slow path: interrupts posted while descheduled are reposted
            # as self-interrupts through the local APIC.
            if upid.outstanding or upid.pir:
                pir = upid.take_pir()
                upid.set_outstanding(False)
                vector = upid.notification_vector
                self.apic.accept(vector, now)
                self.slow_path_reposts += 1
                self.account.charge("slow_path", self.costs.uipi_receive_flush)
        # Restore the KB timer (§4.3).
        if thread.saved_kb_timer is not None:
            self.kb_timer.restore(thread.saved_kb_timer)
            thread.saved_kb_timer = None
            # Deliver a timer that expired while the thread was out: the
            # kernel checks the deadline on context restore (§4.3).
            if self.kb_timer.enabled and self.kb_timer.armed and now >= self.kb_timer.deadline:
                self.kb_timer.check_fire(now)
                self.apic.raise_timer(self.kb_timer.vector, now)
                self.slow_path_reposts += 1
        # Device-interrupt forwarding: activate this thread's vectors (§4.5).
        self.apic.set_active_vectors(thread.forwarded_vectors)
        # Repost DUPID-captured device interrupts (§4.5 slow path).
        for user_vector in thread.pending_slow_path:
            self.apic.raise_timer(user_vector, now)
            self.slow_path_reposts += 1
        thread.pending_slow_path.clear()

    def counters_as_dict(self) -> dict:
        """The scheduler's telemetry counters, for the metrics registry."""
        return {
            "context_switches": self.context_switches,
            "slow_path_reposts": self.slow_path_reposts,
            "eager_wakes": self.eager_wakes,
            "forced_preemptions": self.forced_preemptions,
        }

    def preempt(self, now: float) -> Optional[KernelThread]:
        """Timeslice: deschedule the current thread and run the next one."""
        self.deschedule_current(now)
        return self.schedule_next(now)

    def fault_preempt(self, now: float) -> Optional[KernelThread]:
        """Fault injection: an unplanned context switch at an arbitrary
        point (e.g. mid-delivery from the receiver's perspective).

        Functionally identical to :meth:`preempt` — the interesting part is
        *when* the injector calls it — but counted separately so invariant
        checks can distinguish scheduled timeslices from injected ones."""
        self.forced_preemptions += 1
        return self.preempt(now)
