"""The user-interrupt system-call surface (§3.2, §4.3, §4.5).

:class:`KernelInterface` is the event-tier kernel façade: it allocates the
in-memory descriptors (UPID, UITT, DUPID), grants send permissions, and
flips the MSR-backed feature switches, mirroring the interface Intel's UIPI
kernel patches expose plus the xUI additions:

- ``register_handler(thread)`` / ``register_sender(process, thread)``
- ``enable_kb_timer(core)`` / ``disable_kb_timer(core)``
- ``register_forwarding(thread, vector)`` (device interrupts for threads)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigError, ProtocolError
from repro.cpu.cache import SharedMemory
from repro.kernel.scheduler import CoreScheduler
from repro.kernel.threads import KernelThread
from repro.notify.costs import CostModel
from repro.uintr.apic import LocalApic
from repro.uintr.uitt import UITT
from repro.uintr.upid import UPID, UPID_BYTES

_KERNEL_HEAP_BASE = 0x200_0000
_DUPID_BYTES = 16
_UITT_CAPACITY = 64


@dataclass
class Process:
    """A process: a UITT shared by all of its threads (§3.1)."""

    pid: int
    uitt: Optional[UITT] = None
    threads: List[KernelThread] = field(default_factory=list)


class KernelInterface:
    """Event-tier kernel syscalls for user-interrupt setup."""

    def __init__(self, memory: SharedMemory, costs: Optional[CostModel] = None) -> None:
        self.memory = memory
        self.costs = costs or CostModel.paper_defaults()
        self._heap = _KERNEL_HEAP_BASE
        self._pids = itertools.count(1)
        self.processes: Dict[int, Process] = {}
        self.schedulers: Dict[int, CoreScheduler] = {}

    # -- memory management -------------------------------------------------
    def _allocate(self, size: int, align: int = 64) -> int:
        self._heap = (self._heap + align - 1) & ~(align - 1)
        addr = self._heap
        self._heap += size
        return addr

    # -- processes / schedulers ---------------------------------------------
    def create_process(self) -> Process:
        process = Process(pid=next(self._pids))
        self.processes[process.pid] = process
        return process

    def attach_scheduler(self, scheduler: CoreScheduler) -> None:
        self.schedulers[scheduler.core_id] = scheduler

    # -- UIPI registration (§3.2) --------------------------------------------
    def register_handler(
        self, thread: KernelThread, apic: LocalApic, notification_vector: int = 0xEC
    ) -> int:
        """Allocate and initialize a UPID for ``thread``; returns its address."""
        if thread.upid_addr is not None:
            raise ProtocolError(f"{thread.name} already registered a handler")
        addr = self._allocate(UPID_BYTES)
        upid = UPID(self.memory, addr)
        upid.clear()
        upid.set_notification_vector(notification_vector)
        upid.set_notification_destination(apic.apic_id)
        thread.upid_addr = addr
        return addr

    def register_sender(self, process: Process, receiver: KernelThread, user_vector: int) -> int:
        """Grant ``process`` permission to send user vector ``user_vector``
        to ``receiver``; returns the UITT index for senduipi."""
        if receiver.upid_addr is None:
            raise ProtocolError(
                f"receiver {receiver.name} has no UPID (call register_handler first)"
            )
        if process.uitt is None:
            base = self._allocate(_UITT_CAPACITY * 16)
            process.uitt = UITT(self.memory, base, capacity=_UITT_CAPACITY)
        return process.uitt.append(receiver.upid_addr, user_vector)

    # -- KB timer (§4.3) -------------------------------------------------------
    def enable_kb_timer(self, core_id: int, vector: int) -> None:
        """Write kb_config_MSR on ``core_id``: enable and assign the vector."""
        scheduler = self._scheduler(core_id)
        scheduler.kb_timer.enabled = True
        scheduler.kb_timer.vector = vector

    def disable_kb_timer(self, core_id: int) -> None:
        scheduler = self._scheduler(core_id)
        scheduler.kb_timer.enabled = False
        scheduler.kb_timer.disarm()

    def _scheduler(self, core_id: int) -> CoreScheduler:
        if core_id not in self.schedulers:
            raise ConfigError(f"no scheduler attached for core {core_id}")
        return self.schedulers[core_id]

    # -- interrupt forwarding (§4.5) -------------------------------------------
    def register_forwarding(
        self, thread: KernelThread, apic: LocalApic, vector: int, user_vector: int
    ) -> int:
        """Route device interrupts on ``vector`` (at ``apic``) to ``thread``.

        Allocates the thread's DUPID for the slow path and enables
        forwarding in the local APIC.  Returns the DUPID address.
        """
        if thread.dupid_addr is None:
            thread.dupid_addr = self._allocate(_DUPID_BYTES)
        apic.enable_forwarding(vector, user_vector)
        thread.forwarded_vectors |= 1 << vector
        return thread.dupid_addr

    def capture_slow_path_device(self, thread: KernelThread, user_vector: int) -> None:
        """Kernel trap handler for a forwarded interrupt whose thread is not
        running: record it in the DUPID for delivery at resume (§4.5)."""
        if thread.dupid_addr is None:
            raise ProtocolError(f"{thread.name} has no DUPID (register_forwarding first)")
        pending = self.memory.read(thread.dupid_addr)
        self.memory.write(thread.dupid_addr, pending | (1 << user_vector))
        thread.pending_slow_path.append(user_vector)
