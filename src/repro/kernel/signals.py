"""POSIX signal delivery cost model (§2).

A signal costs ~2.4 us at 2 GHz: ~1.4 us of OS context-switch work plus
~1 us of microarchitectural damage (branch mispredictions and cache misses
from contention with the kernel signal-handling code).  The event tier
charges these costs to the receiving core's account; the split is kept so
experiments can report where the time goes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.notify.costs import CostModel
from repro.sim.account import CycleAccount
from repro.sim.simulator import Simulator


@dataclass
class SignalRecord:
    """One delivered signal (for latency analysis)."""

    signo: int
    sent_at: float
    delivered_at: float

    @property
    def latency(self) -> float:
        return self.delivered_at - self.sent_at


class SignalDelivery:
    """Delivers signals to a core with the measured overheads."""

    def __init__(
        self,
        sim: Simulator,
        account: CycleAccount,
        costs: Optional[CostModel] = None,
    ) -> None:
        self.sim = sim
        self.account = account
        self.costs = costs or CostModel.paper_defaults()
        self.delivered: List[SignalRecord] = []
        self._handlers: dict = {}

    def register(self, signo: int, handler: Callable[[SignalRecord], None]) -> None:
        self._handlers[signo] = handler

    @property
    def kernel_entry_cost(self) -> float:
        return self.costs.signal_kernel_share

    @property
    def user_damage_cost(self) -> float:
        return self.costs.signal_delivery - self.costs.signal_kernel_share

    def send(self, signo: int, delay: float = 0.0) -> None:
        """Send ``signo``; the handler runs after the kernel trampoline."""
        sent_at = self.sim.now

        def deliver() -> None:
            self.account.charge("signal_kernel", self.kernel_entry_cost)
            self.account.charge("signal_user_damage", self.user_damage_cost)
            record = SignalRecord(signo=signo, sent_at=sent_at, delivered_at=self.sim.now)
            self.delivered.append(record)
            handler = self._handlers.get(signo)
            if handler is not None:
                handler(record)

        # The kernel half of the delivery happens before the handler runs.
        self.sim.schedule(delay + self.kernel_entry_cost, deliver, name=f"signal:{signo}")
