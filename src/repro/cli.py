"""Command-line interface: run the paper's experiments without pytest.

Usage::

    python -m repro list
    python -m repro quickstart [--tracked]
    python -m repro costs [--from-cycle-model]
    python -m repro experiment table2|fig2|fig4|fig5|fig6|fig7|fig8|fig9|sec35|sec61|sec2 [--full] [--jobs N] [--verbose] [--trace-out T.json] [--metrics-out M.json]
    python -m repro perf-selftest [--jobs N]
    python -m repro bench-gate [--tolerance 25%] [--baseline PATH] [--json-out PATH]
    python -m repro lint [paths...] [--json] [--list-rules]
    python -m repro fuzz [--seeds N] [--root-seed N] [--time-budget S] [--no-shrink]
    python -m repro fuzz repro .repro-fuzz/<fingerprint>.json

``--full`` runs closer to benchmark scale; the default is a quick variant
(seconds to a couple of minutes per experiment).  ``--jobs N`` fans
independent sweep points over N worker processes (0 = one per CPU); results
are bit-identical to the serial path.  Cycle-tier outcomes are memoized in a
persistent cache (``REPRO_CACHE_DIR``, disable with ``REPRO_CACHE=0``), and
``perf-selftest`` verifies both properties at reduced scale.  Cold runs use
the cycle-skipping fast engine by default; ``REPRO_FAST=0`` falls back to
the naive stepper, and ``--verbose`` prints skip/uop-cache/event telemetry.

``--trace-out``/``--metrics-out`` additionally run the observability pass
(``repro.obs``): one traced cycle-tier run per delivery strategy, exported
as Perfetto-loadable Chrome trace JSON and a metrics document with
per-strategy delivery-latency histograms.  ``bench-gate`` re-runs the
cold-engine benchmark suite and compares it against the committed
``BENCH_cycletier.json`` baseline within a wall-clock tolerance.
"""

from __future__ import annotations

import argparse
import sys
from functools import partial
from typing import Callable, Dict, Optional

from repro.analysis.tables import format_paper_comparison, format_series, format_table

EXPERIMENTS: Dict[str, str] = {
    "table2": "Table 2 — key UIPI performance metrics",
    "fig2": "Figure 2 — UIPI latency timeline",
    "fig4": "Figure 4 — receiver-side overheads (5 us interval)",
    "fig5": "Figure 5 — safepoints vs. polling vs. UIPI preemption",
    "fig6": "Figure 6 — the cost of a timer core",
    "fig7": "Figure 7 — RocksDB tail latency under preemption",
    "fig8": "Figure 8 — l3fwd efficiency (polling vs. xUI)",
    "fig9": "Figure 9 — DSA completion delivery",
    "sec35": "§3.5 — flush-vs-drain fingerprints",
    "sec61": "§6.1 — worst-case tracked-interrupt latency",
    "sec2": "§2 — mechanism unit costs",
}


def _cmd_list(_args) -> int:
    print("Available experiments:\n")
    for name, description in EXPERIMENTS.items():
        print(f"  {name:8s} {description}")
    print("\nRun one with: python -m repro experiment <name>")
    return 0


def _cmd_quickstart(args) -> int:
    from repro import quickstart_uipi_roundtrip

    result = quickstart_uipi_roundtrip(tracked=args.tracked)
    print(
        format_table(
            ["field", "value"],
            [[key, value] for key, value in result.items()],
            title="UIPI round trip between two simulated cores",
        )
    )
    return 0


def _cmd_costs(args) -> int:
    from repro.notify.costs import CostModel

    if args.from_cycle_model:
        print("re-deriving interrupt costs from the cycle tier (takes ~10s)...")
        costs = CostModel.from_cycle_model(quick=True)
    else:
        costs = CostModel.paper_defaults()
    rows = [[name, value] for name, value in sorted(vars(costs).items())]
    print(format_table(["cost (cycles @2GHz)", "value"], rows, title="CostModel"))
    return 0


def _run_table2(full: bool, jobs: Optional[int] = None) -> None:
    from repro.experiments.characterize import run_table2

    print(format_paper_comparison(run_table2(quick=not full), title=EXPERIMENTS["table2"]))


def _run_fig2(full: bool, jobs: Optional[int] = None) -> None:
    from repro.experiments.characterize import run_fig2_timeline

    timeline = run_fig2_timeline()
    print(
        format_table(
            ["segment", "cycles"],
            [[key, value] for key, value in timeline.items()],
            title=EXPERIMENTS["fig2"],
        )
    )


def _run_fig4(full: bool, jobs: Optional[int] = None) -> None:
    from repro.apps import microbench as mb
    from repro.experiments.fig4_overheads import CONFIGURATIONS, run_fig4

    benchmarks = (
        None
        if full
        else {"count_loop": partial(mb.make_count_loop, 14_000)}
    )
    results = run_fig4(benchmarks=benchmarks, jobs=jobs)
    rows = [
        [bench, configuration, cells[configuration]["per_event_cycles"], cells[configuration]["overhead_percent"]]
        for bench, cells in results.items()
        for configuration in CONFIGURATIONS
    ]
    print(
        format_table(
            ["benchmark", "configuration", "cy/event", "overhead %"],
            rows,
            title=EXPERIMENTS["fig4"],
        )
    )


def _run_fig5(full: bool, jobs: Optional[int] = None) -> None:
    from repro.apps import microbench as mb
    from repro.experiments.fig5_safepoints import run_fig5

    programs = (
        None
        if full
        else {"base64": partial(mb.make_base64, iterations=2500)}
    )
    results = run_fig5(quanta=[10_000] if not full else None, programs=programs, jobs=jobs)
    rows = [
        [program, mechanism, quantum, overhead]
        for program, mechanisms in results.items()
        for mechanism, by_quantum in mechanisms.items()
        for quantum, overhead in by_quantum.items()
    ]
    print(
        format_table(
            ["program", "mechanism", "quantum (cy)", "slowdown %"],
            rows,
            title=EXPERIMENTS["fig5"],
        )
    )


def _run_fig6(full: bool, jobs: Optional[int] = None) -> None:
    from repro.experiments.fig6_timer_cost import run_fig6

    results = run_fig6(
        core_counts=[1, 8, 22], intervals=[10_000.0, 2_000_000.0], jobs=jobs
    )
    for interface, by_interval in results.items():
        print(
            format_series(
                {f"{interval / 2000:.0f}us": cores for interval, cores in by_interval.items()},
                x_label="app cores",
                y_label="util",
                title=f"{EXPERIMENTS['fig6']} — {interface}",
            )
        )
        print()


def _run_fig7(full: bool, jobs: Optional[int] = None) -> None:
    from repro.experiments.fig7_rocksdb import run_fig7

    loads = [20_000, 100_000, 200_000] if not full else None
    results = run_fig7(loads_rps=loads, duration_seconds=0.1 if full else 0.04)
    rows = [
        [config, point.offered_rps, point.achieved_rps, point.get_p999_us, point.scan_p999_us]
        for config, points in results.items()
        for point in points
    ]
    print(
        format_table(
            ["config", "offered rps", "achieved", "GET p99.9 us", "SCAN p99.9 us"],
            rows,
            title=EXPERIMENTS["fig7"],
        )
    )


def _run_fig8(full: bool, jobs: Optional[int] = None) -> None:
    from repro.experiments.fig8_l3fwd import run_fig8

    results = run_fig8(
        nic_counts=[1, 4] if not full else None,
        load_fractions=[0.0, 0.4] if not full else None,
        duration_seconds=0.01,
        jobs=jobs,
    )
    rows = [
        [mechanism, nics, point.offered_load, point.free_fraction, point.p95_latency_us]
        for mechanism, by_nics in results.items()
        for nics, points in by_nics.items()
        for point in points
    ]
    print(
        format_table(
            ["mechanism", "nics", "load", "free frac", "p95 us"],
            rows,
            title=EXPERIMENTS["fig8"],
            precision=2,
        )
    )


def _run_fig9(full: bool, jobs: Optional[int] = None) -> None:
    from repro.experiments.fig9_dsa import run_fig9

    results = run_fig9(
        noise_fractions=[0.0, 1.0] if not full else None,
        duration_seconds=0.01,
    )
    rows = [
        [f"{req_us:.0f}us", mechanism, point.noise_fraction, point.mean_notification_lag_us, point.free_fraction]
        for req_us, by_mechanism in results.items()
        for mechanism, points in by_mechanism.items()
        for point in points
    ]
    print(
        format_table(
            ["request", "mechanism", "noise", "lag us", "free frac"],
            rows,
            title=EXPERIMENTS["fig9"],
            precision=2,
        )
    )


def _run_sec35(full: bool, jobs: Optional[int] = None) -> None:
    from repro.experiments.characterize import run_flush_vs_drain, run_flushed_uops_linearity

    latency = run_flush_vs_drain(
        footprints_kb=[16, 256], samples=3 if not full else 6, jobs=jobs
    )
    print(
        format_series(
            latency, x_label="footprint KB", y_label="latency cy", title="§3.5 exp 1"
        )
    )
    print()
    linear = run_flushed_uops_linearity(interrupt_counts=[2, 4])
    print(
        format_table(
            ["interrupts", "flushed uops"],
            [[count, value] for count, value in sorted(linear.items())],
            title="§3.5 exp 2",
        )
    )


def _run_sec61(full: bool, jobs: Optional[int] = None) -> None:
    from repro.experiments.characterize import run_max_latency

    results = run_max_latency(chain_lengths=[10, 50], jobs=jobs)
    print(
        format_series(
            results, x_label="chain length", y_label="worst-case cy", title=EXPERIMENTS["sec61"]
        )
    )


def _run_sec2(full: bool, jobs: Optional[int] = None) -> None:
    from repro.experiments.sec2_costs import run_mechanism_costs

    print(format_paper_comparison(run_mechanism_costs(quick=not full), title=EXPERIMENTS["sec2"]))


_RUNNERS: Dict[str, Callable[..., None]] = {
    "table2": _run_table2,
    "fig2": _run_fig2,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "sec35": _run_sec35,
    "sec61": _run_sec61,
    "sec2": _run_sec2,
}


def _print_engine_counters() -> None:
    from repro.common.counters import GLOBAL_COUNTERS, fast_engine_enabled, macro_engine_enabled

    g = GLOBAL_COUNTERS
    total_cycles = g.cycles_stepped + g.cycles_skipped
    rows = [
        ["engine", "fast (cycle-skipping)" if fast_engine_enabled() else "naive (REPRO_FAST=0)"],
        ["cycles stepped", f"{g.cycles_stepped:,}"],
        ["cycles skipped", f"{g.cycles_skipped:,}"],
        ["skip fraction", f"{g.skip_fraction:.1%}" if total_cycles else "n/a"],
        ["uop cache hits", f"{g.uop_cache_hits:,}"],
        ["uop cache misses", f"{g.uop_cache_misses:,}"],
        ["uop hit rate", f"{g.uop_hit_rate:.1%}" if (g.uop_cache_hits + g.uop_cache_misses) else "n/a"],
        ["events fired", f"{g.events_fired:,}"],
        ["events fast-forwarded", f"{g.events_fast_forwarded:,}"],
    ]
    macro = [
        ["macro tier", "on (REPRO_MACRO)" if macro_engine_enabled() else "off (REPRO_MACRO=0)"],
        ["macro formations", f"{g.macro_formations:,}"],
        ["macro form aborts", f"{g.macro_form_aborts:,}"],
        ["macro replays", f"{g.macro_replays:,}"],
        ["macro replayed periods", f"{g.macro_replayed_periods:,}"],
        ["macro replayed cycles", f"{g.macro_replayed_cycles:,}"],
        ["macro replayed fraction", f"{g.macro_replayed_fraction:.1%}"],
        ["macro bails (event/divergence/horizon)",
         f"{g.macro_bail_event:,} / {g.macro_bail_divergence:,} / {g.macro_bail_horizon:,}"],
    ]
    if g.macro_formations or g.macro_form_aborts:
        rows += macro
    else:
        rows.append(macro[0])
    robustness = [
        ["sweep points resumed", g.sweep_points_resumed],
        ["sweep points salvaged", g.sweep_points_salvaged],
        ["sweep points retried", g.sweep_points_retried],
        ["cache corrupt entries", g.cache_corrupt_entries],
        ["cache unwritable writes", g.cache_unwritable_writes],
        ["cache stale tmp swept", g.cache_stale_tmp_swept],
    ]
    rows += [[name, f"{value:,}"] for name, value in robustness if value]
    print()
    print(format_table(["engine counter", "value"], rows, title="Engine telemetry (this process)"))
    print("(runs fanned out with --jobs execute in worker processes and are not counted)")


def _write_observability(args) -> None:
    """The ``--trace-out`` / ``--metrics-out`` pass (see repro.obs.observe)."""
    import json

    from repro.obs.chrometrace import write_trace
    from repro.obs.observe import run_observed

    print("\nobservability pass: tracing one run per delivery strategy...")
    observed = run_observed(full=args.full)
    if args.trace_out:
        write_trace(args.trace_out, observed.groups)
        events = sum(len(group.events) for group in observed.groups)
        print(f"wrote {args.trace_out} ({events} events; load at https://ui.perfetto.dev)")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(observed.metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.metrics_out}")
    rows = [
        [label, observed.medians.get(label)] for label in sorted(observed.medians)
    ]
    print(
        format_table(
            ["strategy", "median delivery latency (cy)"],
            rows,
            title="Delivery latency (send/fire -> handler entry)",
        )
    )
    ordering = "holds" if observed.ordering_ok else "DOES NOT HOLD"
    print(f"Figure 4 ordering (flush > tracked IPI > tracked timer): {ordering}")


def _cmd_experiment(args) -> int:
    from repro.common.counters import GLOBAL_COUNTERS
    from repro.common.errors import ConfigError

    runner = _RUNNERS.get(args.name)
    if runner is None:
        print(f"unknown experiment {args.name!r}; try: python -m repro list", file=sys.stderr)
        return 2
    if args.verbose:
        GLOBAL_COUNTERS.reset()
    try:
        runner(args.full, jobs=args.jobs)
        if args.trace_out or args.metrics_out:
            _write_observability(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.verbose:
        _print_engine_counters()
    return 0


def _cmd_faultsweep(args) -> int:
    from repro.common.errors import ConfigError, InvariantViolation
    from repro.faults import FAULT_KINDS, run_fault_matrix
    from repro.faults.plan import CYCLE_TIER_KINDS

    kinds = args.kinds.split(",") if args.kinds else list(CYCLE_TIER_KINDS)
    unknown = [k for k in kinds if k not in FAULT_KINDS]
    if unknown:
        print(
            f"error: unknown fault kind(s) {unknown}; known: {', '.join(FAULT_KINDS)}",
            file=sys.stderr,
        )
        return 2
    try:
        records = run_fault_matrix(kinds=kinds, seed=args.seed, quick=args.quick)
    except InvariantViolation as exc:
        print(f"INVARIANT VIOLATION:\n{exc}", file=sys.stderr)
        return 1
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [
        [
            record["kind"],
            record["strategy"],
            "ok" if record["match"] else "MISMATCH",
            record["delivered"],
            sum(record["faults"].values()),
            record["accounting"]["checks_run"],
        ]
        for record in records
    ]
    print(
        format_table(
            ["fault kind", "strategy", "naive==fast", "delivered", "faults fired", "checks"],
            rows,
            title=f"Fault matrix (seed={args.seed}{', quick' if args.quick else ''})",
        )
    )
    mismatches = [r for r in records if not r["match"]]
    if mismatches:
        print(
            f"faultsweep: {len(mismatches)} engine mismatch(es); replay plans:",
            file=sys.stderr,
        )
        for record in mismatches:
            print(f"  {record['kind']}/{record['strategy']}: {record['plan']}", file=sys.stderr)
        return 1
    print("faultsweep: OK — engines agree and all invariants held")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.lint import run_lint

    return run_lint(args)


def _write_fuzz_metrics(path: str, report, shrunk: int, saved: int) -> None:
    import json

    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    summary = report.summary()
    registry.set_counter("fuzz.scenarios_run", summary["scenarios_run"])
    registry.set_counter("fuzz.findings", summary["findings"])
    registry.set_counter("fuzz.unique_fingerprints", summary["unique_fingerprints"])
    registry.set_counter("fuzz.shrunk", shrunk)
    registry.set_counter("fuzz.artifacts_saved", saved)
    for kind, count in sorted(summary["by_kind"].items()):
        registry.set_counter(f"fuzz.findings.{kind}", count)
    registry.gauge("fuzz.elapsed_seconds", summary["elapsed_seconds"])
    registry.gauge("fuzz.stopped_on_budget", float(summary["stopped_on_budget"]))
    registry.absorb_engine_counters()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(registry.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")


def _cmd_fuzz(args) -> int:
    if getattr(args, "fuzz_command", None) == "repro":
        return _cmd_fuzz_repro(args)
    from repro.common.errors import ConfigError
    from repro.scenario.corpus import CrashCorpus
    from repro.scenario.fuzz import fuzz
    from repro.scenario.generate import ScenarioGenerator
    from repro.scenario.shrink import shrink

    def progress(index, scenario, scenario_findings) -> None:
        for finding in scenario_findings:
            print(
                f"seed {index} [{scenario.scenario_id()}]: {finding.kind} on "
                f"{finding.leg} ({finding.fingerprint}) — {finding.detail}"
            )

    try:
        generator = ScenarioGenerator(args.root_seed)
        report = fuzz(
            generator,
            seeds=args.seeds,
            start=args.start,
            time_budget=args.time_budget,
            progress=progress,
        )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    corpus = CrashCorpus(args.corpus_dir) if args.corpus_dir else CrashCorpus()
    # One shrink per new fingerprint: a bug that fires on many seeds is
    # minimized once, from its first occurrence.
    first_by_fp = {}
    for finding in report.findings:
        first_by_fp.setdefault(finding.fingerprint, finding)
    shrunk = 0
    saved = 0
    for fp, finding in sorted(first_by_fp.items()):
        if corpus.path_for(fp).exists():
            print(f"{fp}: already in corpus, skipping shrink")
            continue
        shrink_result = None
        if not args.no_shrink:
            shrink_result = shrink(finding)
            if shrink_result.shrank:
                shrunk += 1
                finding = shrink_result.finding
        path = corpus.save(finding, shrink_result)
        if path is not None:
            saved += 1
            note = ""
            if shrink_result is not None and shrink_result.shrank:
                note = (
                    f" (shrunk {shrink_result.original.size_key()} -> "
                    f"{finding.scenario.size_key()} in "
                    f"{shrink_result.steps_accepted} steps)"
                )
            print(f"{fp}: saved {path}{note}")

    summary = report.summary()
    budget_note = " (stopped on time budget)" if report.stopped_on_budget else ""
    print(
        f"fuzz: {summary['scenarios_run']} scenario(s), seeds "
        f"{report.first_seed}..{report.last_seed}, "
        f"{summary['findings']} finding(s), "
        f"{summary['unique_fingerprints']} unique fingerprint(s), "
        f"{summary['elapsed_seconds']}s{budget_note}"
    )
    if args.metrics_out:
        _write_fuzz_metrics(args.metrics_out, report, shrunk, saved)
    if report.clean:
        print("fuzz: OK — engines agree and all invariants held")
        return 0
    return 1


def _cmd_fuzz_repro(args) -> int:
    from repro.common.errors import ConfigError
    from repro.scenario.corpus import CrashCorpus
    from repro.scenario.fuzz import run_one

    try:
        artifact = CrashCorpus().load(args.artifact)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    scenario = artifact["scenario_obj"]
    target = artifact["fingerprint"]
    print(
        f"replaying {args.artifact}: scenario {scenario.scenario_id()}, "
        f"expecting {artifact['kind']} on {artifact['leg']} ({target})"
    )
    findings = run_one(scenario)
    for finding in findings:
        marker = "MATCH" if finding.fingerprint == target else "other"
        print(
            f"  [{marker}] {finding.kind} on {finding.leg} "
            f"({finding.fingerprint}) — {finding.detail}"
        )
    if any(f.fingerprint == target for f in findings):
        print("fuzz repro: reproduced")
        return 0
    print(
        f"fuzz repro: NOT reproduced — {len(findings)} finding(s), none "
        f"matching {target}",
        file=sys.stderr,
    )
    return 1


def _cmd_bench_gate(args) -> int:
    from pathlib import Path

    from repro.common.errors import ConfigError
    from repro.obs.regress import run_gate, parse_tolerance

    try:
        tolerance = parse_tolerance(args.tolerance)
        return run_gate(
            tolerance=tolerance,
            baseline=Path(args.baseline) if args.baseline else None,
            report=print,
            json_out=Path(args.json_out) if args.json_out else None,
        )
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_cluster(args) -> int:
    import json
    from pathlib import Path

    from repro.common.errors import ConfigError
    from repro.common.units import cycles_to_us

    try:
        from repro.cluster import ClusterDriver, ClusterTopology
        from repro.cluster.driver import report_to_metrics
        from repro.notify.costs import CostModel

        topology = ClusterTopology(
            name=args.name,
            tenants=args.tenants,
            shards=args.shards,
            hosts=args.hosts,
            cores_per_shard=args.cores_per_shard,
            scenario=args.scenario,
            strategies=tuple(args.strategies.split(",")),
            tenant_rps=args.tenant_rps,
            duration_ms=args.duration_ms,
            seed=args.seed,
        )
        costs = CostModel.from_cycle_model() if args.calibrate else None
        driver = ClusterDriver(
            topology,
            jobs=args.jobs,
            checkpoint_dir=args.checkpoint_dir,
            costs=costs,
        )
        report = driver.run()
        if args.selfcheck:
            rerun = ClusterDriver(
                topology, jobs=args.jobs, checkpoint_dir=args.checkpoint_dir, costs=costs
            ).run()
            if rerun.dumps() != report.dumps():
                print("cluster selfcheck: re-run report NOT byte-identical", file=sys.stderr)
                return 1
            print("cluster selfcheck: re-run report byte-identical")
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    scale = report.scale_factor
    scale_label = f"{scale:,.0f}x" if scale >= 1 else f"{scale:.2g}x"
    rows = []
    for agg in report.aggregates:
        rows.append(
            [
                agg.strategy,
                f"{agg.tenants:,}",
                f"{agg.count:,}",
                f"{cycles_to_us(agg.p50):.2f}" if agg.p50 is not None else "-",
                f"{cycles_to_us(agg.p99):.2f}" if agg.p99 is not None else "-",
                f"{cycles_to_us(agg.p999):.2f}" if agg.p999 is not None else "-",
                f"{agg.preemptions_total:,}",
            ]
        )
    print(
        format_table(
            ["strategy", "tenants", "samples", "p50 (us)", "p99 (us)", "p999 (us)", "preemptions"],
            rows,
            title=(
                f"Cluster {topology.name!r}: {topology.tenants:,} tenants / "
                f"{topology.shards} shards / {topology.hosts} hosts "
                f"({scale_label} paper scale, mode={driver.last_mode})"
            ),
        )
    )
    if args.json_out:
        Path(args.json_out).write_text(report.dumps())
        print(f"cluster report written to {args.json_out}")
    if args.metrics_out:
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        report_to_metrics(report, registry)
        Path(args.metrics_out).write_text(json.dumps(registry.as_dict(), indent=2) + "\n")
        print(f"cluster metrics written to {args.metrics_out}")
    if not report.verdict.applicable:
        print("ordering verdict: not applicable (needs all three strategies with samples)")
        return 0
    if report.verdict.ok:
        print("ordering verdict: OK — p999 flush > tracked > timer (Figure 7 at scale)")
        return 0
    print("ordering verdict: FAILED — p999 not ordered flush > tracked > timer", file=sys.stderr)
    return 1


def _cmd_perf_selftest(args) -> int:
    from repro.common.errors import ConfigError
    from repro.perf.selftest import run_selftest

    try:
        result = run_selftest(jobs=args.jobs if args.jobs is not None else 2, report=print)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result["ok"]:
        print("perf-selftest: OK")
        return 0
    print("perf-selftest: FAILED", file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Extended User Interrupts (xUI)' (ASPLOS 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(func=_cmd_list)

    quickstart = sub.add_parser("quickstart", help="send one UIPI between two cores")
    quickstart.add_argument("--tracked", action="store_true", help="use xUI tracking")
    quickstart.set_defaults(func=_cmd_quickstart)

    costs = sub.add_parser("costs", help="print the calibrated cost model")
    costs.add_argument(
        "--from-cycle-model",
        action="store_true",
        help="re-derive interrupt costs by running the cycle tier",
    )
    costs.set_defaults(func=_cmd_costs)

    experiment = sub.add_parser("experiment", help="run one paper experiment")
    experiment.add_argument("name", help="experiment id (see: python -m repro list)")
    experiment.add_argument("--full", action="store_true", help="benchmark-scale run")
    experiment.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan sweep points over N worker processes (0 = one per CPU)",
    )
    experiment.add_argument(
        "--verbose",
        action="store_true",
        help="print fast-engine telemetry (cycle skip / uop cache / event counters)",
    )
    experiment.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="also run the observability pass and write a Perfetto-loadable "
        "Chrome trace JSON (one process per delivery strategy)",
    )
    experiment.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the metrics registry (counters/gauges/delivery-latency "
        "histograms) as JSON",
    )
    experiment.set_defaults(func=_cmd_experiment)

    selftest = sub.add_parser(
        "perf-selftest",
        help="verify parallel/cached runs match the serial path (reduced scale)",
    )
    selftest.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the parallel phase (default 2)",
    )
    selftest.set_defaults(func=_cmd_perf_selftest)

    bench_gate = sub.add_parser(
        "bench-gate",
        help="re-run the cold-engine benchmark suite and fail on regression "
        "vs the committed BENCH_cycletier.json baseline",
    )
    bench_gate.add_argument(
        "--tolerance",
        default="25%",
        metavar="T",
        help="allowed fast-engine wall-clock growth, e.g. '25%%' or '0.25' "
        "(default 25%%)",
    )
    bench_gate.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline JSON to compare against (default: repo BENCH_cycletier.json)",
    )
    bench_gate.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="write the gate verdict as JSON",
    )
    bench_gate.set_defaults(func=_cmd_bench_gate)

    cluster = sub.add_parser(
        "cluster",
        help="sharded datacenter simulation: sweep notification strategies "
        "over tenants x shards and check the Figure-7 p999 ordering",
    )
    cluster.add_argument("--name", default="cluster", help="topology name (report identity)")
    cluster.add_argument("--tenants", type=int, default=4096, help="total tenants")
    cluster.add_argument("--shards", type=int, default=16, help="independent shards")
    cluster.add_argument("--hosts", type=int, default=4, help="simulated hosts")
    cluster.add_argument(
        "--cores-per-shard", type=int, default=1, metavar="N", help="worker cores per shard"
    )
    cluster.add_argument(
        "--scenario",
        default="rocksdb",
        choices=("rocksdb", "timers", "fanout"),
        help="tenant workload template",
    )
    cluster.add_argument(
        "--strategies",
        default="flush,tracked,timer",
        metavar="LIST",
        help="comma-separated notification strategies (default all three)",
    )
    cluster.add_argument(
        "--tenant-rps", type=float, default=50.0, metavar="R", help="per-tenant request rate"
    )
    cluster.add_argument(
        "--duration-ms", type=float, default=20.0, metavar="MS", help="simulated window per shard"
    )
    cluster.add_argument("--seed", type=int, default=0, help="root seed")
    cluster.add_argument(
        "--jobs", type=int, default=None, metavar="N", help="worker processes (default: auto)"
    )
    cluster.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="JSONL checkpoint directory: a killed run resumes from completed shards",
    )
    cluster.add_argument(
        "--calibrate",
        action="store_true",
        help="derive delivery costs from the cycle-tier model instead of paper defaults",
    )
    cluster.add_argument(
        "--selfcheck",
        action="store_true",
        help="run the topology twice and require byte-identical reports",
    )
    cluster.add_argument("--json-out", default=None, metavar="PATH", help="write the report JSON")
    cluster.add_argument(
        "--metrics-out", default=None, metavar="PATH", help="write cluster.* metrics JSON"
    )
    cluster.set_defaults(func=_cmd_cluster)

    faultsweep = sub.add_parser(
        "faultsweep",
        help="run the fault-injection matrix (fault kind x strategy x engine) "
        "with invariant checking",
    )
    faultsweep.add_argument(
        "--seed", type=int, default=0, metavar="N", help="fault-plan seed (default 0)"
    )
    faultsweep.add_argument(
        "--quick", action="store_true", help="two faults per plan instead of four"
    )
    faultsweep.add_argument(
        "--kinds",
        default=None,
        metavar="K1,K2",
        help="comma-separated fault kinds (default: every cycle-tier kind)",
    )
    faultsweep.set_defaults(func=_cmd_faultsweep)

    from repro.analysis.lint import build_lint_parser

    lint = sub.add_parser(
        "lint",
        help="determinism & simulation-purity static analysis (detlint)",
    )
    build_lint_parser(lint)
    lint.set_defaults(func=_cmd_lint)

    fuzz = sub.add_parser(
        "fuzz",
        help="constrained-random differential fuzzing across engine legs "
        "(naive vs fast vs fast+macro vs fast+batch) with shrinking and a "
        "crash corpus",
    )
    fuzz.add_argument(
        "--seeds", type=int, default=100, metavar="N",
        help="number of generated scenarios to run (default 100)",
    )
    fuzz.add_argument(
        "--start", type=int, default=0, metavar="N",
        help="first scenario index (default 0)",
    )
    fuzz.add_argument(
        "--root-seed", type=int, default=0, metavar="N",
        help="generator root seed (default 0); the scenario stream is "
        "byte-stable per (root seed, index)",
    )
    fuzz.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop drawing new scenarios after this much wall clock "
        "(a scenario in flight always finishes)",
    )
    fuzz.add_argument(
        "--corpus-dir", default=None, metavar="DIR",
        help="crash-corpus directory (default .repro-fuzz)",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="save findings as-is instead of minimizing them first",
    )
    fuzz.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write fuzz + engine metrics as JSON (repro.obs.metrics/v1)",
    )
    fuzz.set_defaults(func=_cmd_fuzz)
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command")
    fuzz_repro = fuzz_sub.add_parser(
        "repro",
        help="replay a saved corpus artifact and demand the same fingerprint",
    )
    fuzz_repro.add_argument("artifact", help="path to a .repro-fuzz/*.json artifact")
    fuzz_repro.set_defaults(func=_cmd_fuzz)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
