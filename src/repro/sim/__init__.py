"""Discrete-event simulation kernel (the event tier's substrate).

The end-to-end experiments (Figures 6-9) run on this kernel: a classic
calendar of timestamped events plus generator-based processes for modeling
threads, NICs, accelerators, and timers.  Timestamps are in *cycles* of the
paper's 2 GHz clock unless a component says otherwise.
"""

from repro.sim.event import Event, EventQueue
from repro.sim.simulator import Simulator
from repro.sim.process import Process, Timeout, Waiter, Signal
from repro.sim.trace import TraceRecorder, TraceEvent

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Process",
    "Timeout",
    "Waiter",
    "Signal",
    "TraceRecorder",
    "TraceEvent",
]
