"""The simulation clock and main loop."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro import obs as _obs
from repro.common.counters import GLOBAL_COUNTERS
from repro.common.errors import SimulationError
from repro.sim.event import Event, EventQueue


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock.

    Time is a float; for the event tier we use cycles of the 2 GHz paper
    clock.  The loop pops the earliest event, advances the clock to it, and
    runs its callback.  Callbacks may schedule further events (never in the
    past).

    Engine flags: ``REPRO_FAST`` gates this loop's fast-forward batching
    (below); ``REPRO_MACRO`` — the macro-op loop-replay tier — is a
    *cycle-tier* optimization living entirely in
    :class:`repro.cpu.multicore.MultiCoreSystem` /
    :mod:`repro.cpu.macroop`, and has no effect on the event tier: there
    is no per-cycle interpreter here to shortcut.
    """

    __slots__ = ("_now", "_queue", "_running", "events_processed")

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule_at(self, time: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Schedule ``callback`` at absolute ``time``."""
        if time != time:  # NaN: silently passes any ordered comparison
            raise SimulationError(f"cannot schedule event {name!r} at NaN time")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {name!r} at {time} before now={self._now}"
            )
        return self._queue.push(time, callback, name)

    def schedule(self, delay: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Schedule ``callback`` after ``delay`` time units."""
        if delay != delay:  # NaN: silently passes the < 0 check below
            raise SimulationError(f"cannot schedule event {name!r} with NaN delay")
        if delay < 0:
            raise SimulationError(f"cannot schedule event {name!r} with negative delay {delay}")
        return self._queue.push(self._now + delay, callback, name)

    def postpone(self, event: Optional[Event], extra: float) -> Optional[Event]:
        """Cancel ``event`` and reschedule its callback ``extra`` later.

        The fault-injection primitive for late-firing timers (timer drift):
        the original event is cancelled in place and a fresh one carries the
        same callback at ``max(now, time + extra)``.  Returns the new event,
        or None when ``event`` is None or already cancelled (nothing to
        postpone — e.g. the timer fired or was stopped first).
        """
        if extra != extra or extra < 0:
            raise SimulationError(f"cannot postpone an event by {extra}")
        if event is None or event.cancelled:
            return None
        event.cancel()
        return self.schedule_at(max(self._now, event.time + extra), event.callback, event.name)

    def pending(self) -> int:
        """Number of live events waiting in the calendar."""
        return len(self._queue)

    def peek_next_time(self) -> Optional[float]:
        return self._queue.peek_time()

    def step(self) -> bool:
        """Run the next live event; return False if the calendar was empty.

        Cancelled events are discarded without touching the clock or
        ``events_processed`` — only callbacks that actually fire count.
        """
        queue = self._queue
        heap = queue.heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            if queue._cancelled > 0:
                queue._cancelled -= 1
        if not heap:
            return False
        event = heapq.heappop(heap)
        g = GLOBAL_COUNTERS
        if event.time > self._now:
            g.events_fast_forwarded += 1
        g.events_fired += 1
        self._now = event.time
        self.events_processed += 1
        event.callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the calendar drains, ``until`` is reached, or ``max_events`` fire.

        Returns the simulation time when the loop stopped.  With ``until``
        set, the clock is advanced to ``until`` even if the calendar drained
        earlier, so back-to-back ``run`` calls observe contiguous time.

        The loop works on the heap directly: one cancelled-head scan per
        iteration instead of the peek/pop double scan, and cancelled events
        are dropped without counting toward ``events_processed`` or
        ``max_events``.

        Fast-forward structure: the clock jumps straight to the next live
        event's timestamp (counted in ``GLOBAL_COUNTERS`` when it actually
        moves time forward), and a batch of same-timestamp events is drained
        in one inner loop without re-checking the ``until`` bound per event.
        """
        if self._running:
            raise SimulationError("simulator loop is not reentrant")
        self._running = True
        fired = 0
        jumps = 0
        queue = self._queue
        heap = queue.heap
        heappop = heapq.heappop
        # Hoisted so the disabled case costs one check per `run`, not per event.
        record = _obs.TRACER.instant if _obs.enabled else None
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    break
                while heap and heap[0].cancelled:
                    heappop(heap)
                    if queue._cancelled > 0:
                        queue._cancelled -= 1
                if not heap:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                event = heap[0]
                now = event.time
                if until is not None and now > until:
                    self._now = until
                    break
                if now > self._now:
                    jumps += 1
                heappop(heap)
                self._now = now
                self.events_processed += 1
                fired += 1
                if record is not None:
                    record(now, event.name or "event", "sim.events", "sim")
                event.callback()
                # Batch-drain everything scheduled for this same instant
                # (callbacks may add more; heap order keeps FIFO ties).
                while heap and (max_events is None or fired < max_events):
                    event = heap[0]
                    if event.cancelled:
                        heappop(heap)
                        if queue._cancelled > 0:
                            queue._cancelled -= 1
                        continue
                    if event.time != now:
                        break
                    heappop(heap)
                    self.events_processed += 1
                    fired += 1
                    if record is not None:
                        record(now, event.name or "event", "sim.events", "sim")
                    event.callback()
        finally:
            self._running = False
            g = GLOBAL_COUNTERS
            g.events_fired += fired
            g.events_fast_forwarded += jumps
        return self._now

    def run_until(self, time: float) -> float:
        """Run to the absolute time bound ``time``; the clock lands exactly
        on it.  A bound in the past is an error (the clock never rewinds)."""
        if time < self._now:
            raise SimulationError(
                f"run_until({time}) is in the past (now={self._now})"
            )
        return self.run(until=time)
