"""Generator-based processes on top of the event calendar.

A :class:`Process` wraps a Python generator that yields *wait conditions*:

- ``Timeout(delay)`` — resume after ``delay`` time units;
- ``Signal`` — resume when another process fires the signal;
- another :class:`Process` — resume when that process finishes.

This is a deliberately small subset of SimPy's model: enough to express
threads waiting on timers, completion queues, and each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.common.errors import SimulationError
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class Timeout:
    """Wait condition: resume after ``delay`` time units."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"timeout delay must be non-negative, got {self.delay}")


class Signal:
    """A broadcast wakeup: processes wait on it, any code may fire it.

    Firing delivers an optional payload to every current waiter and resets
    the signal (later waiters block until the next fire).
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self._sim = sim
        self.name = name
        self._waiters: List["Process"] = []
        self.fire_count = 0

    def add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    def remove_waiter(self, process: "Process") -> None:
        if process in self._waiters:
            self._waiters.remove(process)

    def fire(self, payload: Any = None) -> int:
        """Wake all waiters now; return how many were woken."""
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            # Wake at the current instant; scheduling (not calling inline)
            # keeps wake order FIFO and avoids reentrant generator resumes.
            self._sim.schedule(0.0, lambda p=process: p._resume(payload), name=f"signal:{self.name}")
        return len(waiters)


class Waiter:
    """Single-consumer mailbox with FIFO buffering.

    Unlike :class:`Signal`, a value put when nobody waits is buffered, so
    producers and consumers need not be rate-matched (used for completion
    queues and inter-thread messages).
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self._sim = sim
        self.name = name
        self._buffer: List[Any] = []
        self._waiting: Optional[Process] = None

    def put(self, item: Any) -> None:
        if self._waiting is not None:
            process, self._waiting = self._waiting, None
            self._sim.schedule(0.0, lambda p=process: p._resume(item), name=f"waiter:{self.name}")
        else:
            self._buffer.append(item)

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; None if the mailbox is empty."""
        if self._buffer:
            return self._buffer.pop(0)
        return None

    def __len__(self) -> int:
        return len(self._buffer)

    def _attach(self, process: "Process") -> bool:
        """Called by Process when a generator yields this waiter.

        Returns True if a buffered item satisfied the wait immediately.
        """
        if self._buffer:
            item = self._buffer.pop(0)
            self._sim.schedule(0.0, lambda: process._resume(item), name=f"waiter:{self.name}")
            return True
        if self._waiting is not None:
            raise SimulationError(f"waiter {self.name!r} already has a consumer")
        self._waiting = process
        return True


class Process:
    """A coroutine driven by the simulator.

    The wrapped generator yields :class:`Timeout`, :class:`Signal`,
    :class:`Waiter`, or another :class:`Process`; the value sent back into
    the generator is the wake payload (the waited-on process's return value,
    a signal payload, a mailbox item, or None for timeouts).
    """

    def __init__(self, sim: Simulator, generator: Generator, name: str = "") -> None:
        self._sim = sim
        self._generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self._joiners: List[Process] = []
        sim.schedule(0.0, lambda: self._resume(None), name=f"start:{name}")

    def _resume(self, payload: Any) -> None:
        if self.finished:
            return
        try:
            condition = self._generator.send(payload)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(condition)

    def _wait_on(self, condition: Any) -> None:
        if isinstance(condition, Timeout):
            self._sim.schedule(condition.delay, lambda: self._resume(None), name=f"timeout:{self.name}")
        elif isinstance(condition, Signal):
            condition.add_waiter(self)
        elif isinstance(condition, Waiter):
            condition._attach(self)
        elif isinstance(condition, Process):
            if condition.finished:
                self._sim.schedule(0.0, lambda: self._resume(condition.result))
            else:
                condition._joiners.append(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded an unsupported wait condition: {condition!r}"
            )

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        joiners, self._joiners = self._joiners, []
        for joiner in joiners:
            self._sim.schedule(0.0, lambda j=joiner: j._resume(result), name=f"join:{self.name}")
