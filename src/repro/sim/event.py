"""The event calendar: timestamped callbacks with stable FIFO tie-breaking."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.common.errors import SimulationError


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, sequence)`` so that two events scheduled for
    the same instant fire in scheduling order — a property several protocols
    rely on (e.g. "the UPID write is visible before the IPI arrives").
    """

    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` with lazy cancellation.

    Cancelled events stay in the heap until they surface, so cancellation is
    O(1); ``len()`` counts only live (non-cancelled) events.
    """

    def __init__(self) -> None:
        #: The raw heap; the simulator main loop iterates it directly to
        #: avoid the peek/pop double scan on the hot path.
        self._heap: list[Event] = []
        self._counter = itertools.count()

    @property
    def heap(self) -> list[Event]:
        """The underlying heap (may contain cancelled events)."""
        return self._heap

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        self._drop_cancelled_head()
        return bool(self._heap)

    def push(self, time: float, callback: Callable[[], Any], name: str = "") -> Event:
        if time != time:  # NaN check
            raise SimulationError("event time is NaN")
        event = Event(time=time, sequence=next(self._counter), callback=callback, name=name)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        self._drop_cancelled_head()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event:
        self._drop_cancelled_head()
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
