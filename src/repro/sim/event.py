"""The event calendar: timestamped callbacks with stable FIFO tie-breaking."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.common.errors import SimulationError


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, sequence)`` so that two events scheduled for
    the same instant fire in scheduling order — a property several protocols
    rely on (e.g. "the UPID write is visible before the IPI arrives").
    """

    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Invoked once when the event transitions to cancelled; the owning
    #: queue uses it to track how much dead weight the heap is carrying.
    on_cancel: Optional[Callable[[], Any]] = field(default=None, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self.on_cancel is not None:
                self.on_cancel()


class EventQueue:
    """A priority queue of :class:`Event` with lazy cancellation.

    Cancelled events stay in the heap until they surface, so cancellation is
    O(1); ``len()`` counts only live (non-cancelled) events.  When cancelled
    entries come to dominate (heavy timer re-arming), the queue compacts
    itself in place — an amortized sweep that keeps pop costs proportional
    to live events instead of total scheduled events.
    """

    #: Compact only past this many dead entries (small heaps never bother).
    COMPACT_MIN_CANCELLED = 64

    __slots__ = ("_heap", "_counter", "_cancelled")

    def __init__(self) -> None:
        #: The raw heap; the simulator main loop iterates it directly to
        #: avoid the peek/pop double scan on the hot path.
        self._heap: list[Event] = []
        self._counter = itertools.count()
        #: Dead entries still buried in the heap (approximate upper bound:
        #: direct heap consumers may drop cancelled entries without
        #: decrementing; compaction resets it to the truth).
        self._cancelled = 0

    @property
    def heap(self) -> list[Event]:
        """The underlying heap (may contain cancelled events)."""
        return self._heap

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        self._drop_cancelled_head()
        return bool(self._heap)

    def push(self, time: float, callback: Callable[[], Any], name: str = "") -> Event:
        if time != time:  # NaN check
            raise SimulationError("event time is NaN")
        event = Event(
            time=time,
            sequence=next(self._counter),
            callback=callback,
            name=name,
            on_cancel=self._note_cancelled,
        )
        heapq.heappush(self._heap, event)
        return event

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled > self.COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= len(self._heap)
        ):
            self.compact()

    def compact(self) -> None:
        """Drop all cancelled entries and restore the heap invariant.

        Rebuilds *in place*: the simulator main loop holds a direct
        reference to the heap list, so the list object must survive.
        """
        self._heap[:] = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        self._drop_cancelled_head()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event:
        self._drop_cancelled_head()
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            if self._cancelled > 0:
                self._cancelled -= 1
