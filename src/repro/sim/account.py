"""Per-core cycle accounting for the event tier.

The efficiency results (Figures 6, 8, 9) are statements about where a core's
cycles go: packet processing vs. polling vs. free, timer work vs. available,
etc.  A :class:`CycleAccount` accumulates busy cycles by category; whatever
is not accounted is *free* — cycles available for other work or power
savings (§6.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.errors import ConfigError


@dataclass
class CycleAccount:
    """Busy-cycle accumulator for one core."""

    name: str = ""
    busy: Dict[str, float] = field(default_factory=dict)
    _window_start: float = 0.0

    def charge(self, category: str, cycles: float) -> None:
        if cycles < 0:
            raise ConfigError(f"cannot charge negative cycles ({cycles}) to {category!r}")
        self.busy[category] = self.busy.get(category, 0.0) + cycles

    def total_busy(self) -> float:
        return sum(self.busy.values())

    def busy_fraction(self, elapsed: float) -> float:
        if elapsed <= 0:
            raise ConfigError("elapsed window must be positive")
        return min(1.0, self.total_busy() / elapsed)

    def free_fraction(self, elapsed: float) -> float:
        return 1.0 - self.busy_fraction(elapsed)

    def category_fraction(self, category: str, elapsed: float) -> float:
        if elapsed <= 0:
            raise ConfigError("elapsed window must be positive")
        return self.busy.get(category, 0.0) / elapsed

    def reset(self) -> None:
        self.busy.clear()
