"""Event tracing for debugging and for the Figure 2 timeline reconstruction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped occurrence (e.g. ``uipi.icr_write`` at cycle 383)."""

    time: float
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects :class:`TraceEvent` objects; cheap no-op when disabled."""

    __slots__ = ("enabled", "events")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def record(self, time: float, kind: str, **detail: Any) -> None:
        if self.enabled:
            self.events.append(TraceEvent(time=time, kind=kind, detail=detail))

    def clear(self) -> None:
        self.events.clear()

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def first(self, kind: str) -> Optional[TraceEvent]:
        for event in self.events:
            if event.kind == kind:
                return event
        return None

    def last(self, kind: str) -> Optional[TraceEvent]:
        result = None
        for event in self.events:
            if event.kind == kind:
                result = event
        return result

    def interval(self, start_kind: str, end_kind: str) -> Optional[float]:
        """Time between the first ``start_kind`` and the first later ``end_kind``."""
        start = self.first(start_kind)
        if start is None:
            return None
        for event in self.events:
            if event.kind == end_kind and event.time >= start.time:
                return event.time - start.time
        return None
