"""Event tracing for debugging and for the Figure 2 timeline reconstruction.

The recorder is now a thin compatibility shim over the structured
observability core (:mod:`repro.obs`): events live in a bounded
:class:`~repro.obs.ring.RingBuffer` instead of a bare list, so week-long
traced runs can cap memory with ``max_events`` (the default ``None`` keeps
the historical grow-without-limit behaviour every existing caller
expects).  When the recorder itself is off but the global observability
layer is on, ``record`` forwards the event to :data:`repro.obs.TRACER`
instead — one event ends up in exactly one place, never both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import obs as _obs
from repro.obs.events import category_for_kind, track_for_kind
from repro.obs.ring import RingBuffer


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped occurrence (e.g. ``uipi.icr_write`` at cycle 383)."""

    time: float
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects :class:`TraceEvent` objects; cheap no-op when disabled.

    ``max_events`` bounds retention: the newest N events are kept and
    ``dropped`` counts evictions.  ``None`` (the default) is unbounded.
    """

    __slots__ = ("enabled", "_ring")

    def __init__(self, enabled: bool = True, max_events: Optional[int] = None) -> None:
        self.enabled = enabled
        self._ring: RingBuffer[TraceEvent] = RingBuffer(max_events)

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first (a fresh list each call)."""
        return self._ring.snapshot()

    @property
    def max_events(self) -> Optional[int]:
        return self._ring.max_events

    @property
    def dropped(self) -> int:
        """Events evicted by the ``max_events`` bound."""
        return self._ring.dropped

    def record(self, time: float, kind: str, **detail: Any) -> None:
        if self.enabled:
            self._ring.append(TraceEvent(time=time, kind=kind, detail=detail))
        elif _obs.enabled:
            # Recorder off, observability on: route the event to the
            # structured tracer so untraced runs still export timelines.
            _obs.TRACER.instant(
                time,
                kind,
                track_for_kind(kind, detail),
                category_for_kind(kind),
                **detail,
            )

    def clear(self) -> None:
        self._ring.clear()

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self._ring if event.kind == kind]

    def first(self, kind: str) -> Optional[TraceEvent]:
        for event in self._ring:
            if event.kind == kind:
                return event
        return None

    def last(self, kind: str) -> Optional[TraceEvent]:
        result = None
        for event in self._ring:
            if event.kind == kind:
                result = event
        return result

    def interval(self, start_kind: str, end_kind: str) -> Optional[float]:
        """Time between the first ``start_kind`` and the first later ``end_kind``."""
        start = self.first(start_kind)
        if start is None:
            return None
        for event in self._ring:
            if event.kind == end_kind and event.time >= start.time:
                return event.time - start.time
        return None
